"""TeamNet's distributed inference runtime (Figure 1(d), Section III).

One expert per edge node.  The node that receives the sensor input is the
*master*: it broadcasts the input to all peer *workers* (Step 2), runs its
own expert in parallel (Step 3), gathers every worker's (prediction,
uncertainty) pair (Step 4) and selects the least-uncertain answer (Step 5).
Communication is plain framed TCP — one message out and one small message
back per worker, which is the paper's whole latency argument against MPI.

Each peer connection is owned by a :class:`repro.comm.demux.ReplyDemux`:
one long-lived reader per connection routes reply frames to waiters by
their echoed ``seq``, so the master spends a fixed K reader threads total
(not K per in-flight call) and can keep **multiple inferences in flight
per connection** — the property the micro-batched serving core
(:mod:`repro.distributed.serving`) is built on.  A gather registers one
reply slot per peer *before* broadcasting and then waits on the slots;
one slow or dead worker costs at most one deadline — never K× — and
never blocks the reads from faster peers.  On top of that sits a
resilience control plane (:mod:`repro.distributed.resilience`):

* a **failure detector** — per-peer suspicion scores fed by reply
  latencies, misses, and explicit ``ping``/``pong`` heartbeats
  (:meth:`TeamNetMaster.heartbeat`);
* per-peer **circuit breakers** (closed → open → half-open) gating both
  reconnect attempts and broadcasts, so a flapping worker receives zero
  bytes while its breaker is open and is only re-admitted by a
  successful probe;
* **hedged gathers** — a suspected-slow peer gets a latency-quantile
  derived hedge deadline instead of the full ``reply_timeout``; when it
  misses, the master answers from the quorum it has and records
  ``hedged=True`` in :class:`InferenceStats`;
* a **quorum-aware degradation policy** — answers below ``min_quorum``
  participants or above the entropy ceiling are flagged in the stats or
  refused with :class:`~repro.distributed.resilience.QuorumError`,
  never silently returned.

``deploy_local_team`` spins a worker thread per expert on localhost so the
whole protocol runs for real in tests and examples.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..comm import protocol
from ..comm.base import Transport
from ..comm.demux import FRAME_OVERHEAD_BYTES, ReplyDemux, ReplySlot
from ..comm.transport import (MeteredSocket, TcpTransport, TransportStats)
from ..core.entropy import entropy_from_probs
from ..core.inference import (ExpertOutput, argmin_select, expert_forward,
                              expert_forward_segments, validate_engine)
from ..nn import (CorruptModelError, Module, model_from_bytes,
                  weights_fingerprint)
from .integrity import (CanaryProber, CanarySet, IntegrityConfig,
                        IntegrityViolation, QuarantineManager, ReplyValidator,
                        structural_reason)
from .overload import RetryBudget, remaining_budget
from .resilience import (CircuitBreaker, DegradationPolicy, LatencyTracker,
                         LeaderLease, PeerResilience, QuorumError,
                         ResilienceConfig, SuspicionTracker)

__all__ = ["ExpertWorker", "TeamNetMaster", "WorkerFailure", "WorkerHealth",
           "LeadershipLost", "deploy_local_team", "InferenceStats"]


@dataclass
class InferenceStats:
    """Traffic, gather and degradation telemetry observed by the master
    for one inference.

    Byte/message counters include traffic to workers that later failed:
    the broadcast bytes went on the wire whether or not a reply came back,
    and the edge cost model must charge for them.  ``participants`` is
    the number of experts (master included) whose output fed the answer;
    ``degraded`` is set whenever that is less than the full team, and
    ``violations`` lists any :class:`DegradationPolicy` breaches when the
    policy flags instead of raising.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    gather_s: float = 0.0
    reply_latency_s: dict[int, float] = field(default_factory=dict)
    failures: int = 0
    hedged: bool = False
    hedged_workers: list[int] = field(default_factory=list)
    hedge_delay_s: float | None = None
    participants: int = 0
    degraded: bool = False
    violations: list[str] = field(default_factory=list)
    #: stale frames (duplicated/reordered replies to *earlier* requests)
    #: discarded by seq correlation during this gather
    stale_replies: int = 0
    #: replies rejected by the data-plane integrity layer (malformed
    #: payload, broken simplex, inconsistent entropy, version mismatch);
    #: each is also counted in ``failures``
    invalid_replies: int = 0
    #: workers that answered EXPIRED (whole request shed for deadline) —
    #: booked as load shedding, never as failures
    expired_replies: int = 0
    #: coalesced segments a worker skipped mid-batch for deadline (their
    #: rows come back as uniform max-entropy filler)
    expired_segments: int = 0

    @classmethod
    def from_transport(cls, stats: TransportStats) -> "InferenceStats":
        return cls(stats.messages_sent, stats.bytes_sent,
                   stats.messages_received, stats.bytes_received)


@dataclass
class WorkerHealth:
    """Cumulative per-worker telemetry kept by the master across the
    lifetime of the connection (survives reconnects).  ``detector`` is
    the failure-detector state (suspicion score, latency EWMA); the
    ``suspicion_score`` / ``suspect`` / ``ewma_reply_latency_s``
    properties are its dashboard-friendly readouts."""

    index: int
    address: tuple[str, int]
    replies: int = 0
    failures: int = 0
    timeouts: int = 0
    reconnects: int = 0
    hedges: int = 0
    redeployments: int = 0
    invalid_replies: int = 0
    expired_replies: int = 0
    expired_segments: int = 0
    last_reply_latency_s: float | None = None
    total_reply_latency_s: float = 0.0
    detector: SuspicionTracker = field(default_factory=SuspicionTracker)

    @property
    def mean_reply_latency_s(self) -> float | None:
        if not self.replies:
            return None
        return self.total_reply_latency_s / self.replies

    @property
    def ewma_reply_latency_s(self) -> float | None:
        return self.detector.ewma_latency_s

    @property
    def suspicion_score(self) -> float:
        return self.detector.score

    @property
    def suspect(self) -> bool:
        return self.detector.suspect


class _Peer:
    """Connection state for one worker: socket + reply demux (both None
    while down), the circuit breaker gating its traffic, and cumulative
    health counters (including the failure-detector state)."""

    __slots__ = ("index", "address", "sock", "channel", "health", "breaker")

    def __init__(self, index: int, address: tuple[str, int],
                 sock: MeteredSocket | None, resilience: ResilienceConfig):
        self.index = index
        self.address = address
        self.sock = sock
        self.channel = ReplyDemux(sock) if sock is not None else None
        self.health = WorkerHealth(
            index=index, address=address,
            detector=SuspicionTracker(
                alpha=resilience.ewma_alpha,
                decay=resilience.success_decay,
                threshold=resilience.suspicion_threshold))
        # Seeded per-peer jitter desynchronizes the open windows of
        # breakers that tripped together — without it every peer that
        # died in the same event retries in lockstep, a reconnect storm
        # landing at exactly the wrong moment.
        self.breaker = CircuitBreaker(
            failure_threshold=resilience.failure_threshold,
            reset_timeout=resilience.reset_timeout,
            reset_timeout_max=resilience.reset_timeout_max,
            jitter=resilience.backoff_jitter,
            rng=resilience.breaker_rng(index))

    @property
    def alive(self) -> bool:
        return self.sock is not None


class _Pending:
    """One in-flight broadcast: the slots awaiting each peer's reply.

    Produced by :meth:`TeamNetMaster._begin`, consumed exactly once by
    :meth:`TeamNetMaster._finish`.  Several of these may be outstanding
    at a time — that is the serving core's pipeline."""

    __slots__ = ("x", "seq", "segments", "waits", "inference", "hedged_set")

    def __init__(self, x: np.ndarray, seq: int, segments: list[int] | None,
                 waits: list[tuple[_Peer, ReplySlot]],
                 inference: InferenceStats, hedged_set: set[int]):
        self.x = x
        self.seq = seq
        self.segments = segments
        self.waits = waits
        self.inference = inference
        self.hedged_set = hedged_set


class ExpertWorker:
    """An edge node hosting one expert behind a listening socket.

    ``stop()`` followed by ``start()`` restarts the worker on the *same*
    port, so a master holding the old address can reconnect to it — this
    is what makes recovery after a node reboot possible without
    redeploying the team.  Besides ``infer`` requests the worker answers
    ``ping`` heartbeats (echoing the probe's ``seq``), which is what the
    master's failure detector and half-open circuit breakers probe with.

    Durability hooks (:mod:`repro.store`): with ``store`` (a
    :class:`~repro.store.CheckpointStore`) and ``expert_index`` set,
    every ``start()`` reloads the expert from the newest valid
    checkpoint generation — a rebooted node serves the durable weights,
    not whatever its process happened to hold.  Independently, a
    ``deploy`` message replaces the in-memory expert with the pushed
    archive (see :meth:`TeamNetMaster.redeploy`), which is how a
    standby node becomes a team member.
    """

    def __init__(self, expert: Module, host: str = "127.0.0.1", port: int = 0,
                 transport: Transport | None = None,
                 store=None, expert_index: int | None = None,
                 engine: str = "tape", clock=None):
        self.expert = expert
        self.engine = validate_engine(engine)
        self._host = host
        self._store = store
        self._expert_index = expert_index
        # The model-version stamp for the integrity layer: the weights
        # fingerprint taken when the expert was *installed* (construction,
        # checkpoint reload, deploy) — deliberately not per-reply, so a
        # live in-memory corruption keeps answering under the installed
        # version and only a canary probe's wrong answer can expose it.
        self._fingerprint = weights_fingerprint(expert)
        # Leadership view: the highest (leader, epoch) this worker has
        # accepted and when that leader last proved liveness.  ``clock``
        # is injectable so lease ages are deterministic on the testkit's
        # virtual clock (the failover protocol's whole point).
        self._clock = clock if clock is not None else time.monotonic
        # Overload-control counters (plain ints; serve threads bump them
        # under the GIL and tests read them after quiescence).
        self.forwards = 0        #: expert forwards actually executed
        self.shed_expired = 0    #: whole requests shed for deadline
        self.shed_segments = 0   #: coalesced segments shed mid-batch
        self.lease = LeaderLease()
        self._lease_lock = threading.Lock()
        self._transport = transport if transport is not None else TcpTransport()
        self._listener = self._transport.listen(host, port)
        self._port = self._listener.port  # pin the port for restarts
        self._running = False
        self._threads: list[threading.Thread] = []
        self._acceptor: threading.Thread | None = None
        # Accepted connections, tracked so stop() can close them: a serve
        # thread blocks in a timeout-less recv between requests, and only
        # closing its socket unblocks it — otherwise every stop/start
        # cycle leaks one thread per connection a master held open.
        self._conns: list = []
        self._conn_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    @property
    def fingerprint(self) -> str:
        """The weights fingerprint stamped on this worker's replies."""
        return self._fingerprint

    def leader_view(self) -> tuple[str | None, int, float | None]:
        """``(leader, epoch, lease_age_s)`` as this worker sees it."""
        with self._lease_lock:
            return (self.lease.leader, self.lease.epoch,
                    self.lease.age(self._clock()))

    # ---------------------------------------------------------- leadership
    def _stale_epoch_reply(self, seq, claimed) -> bytes:
        """Fence off a claim below the highest epoch seen (caller holds
        ``_lease_lock``)."""
        return protocol.encode(protocol.ERROR, {
            "error": f"stale epoch {claimed} < {self.lease.epoch}",
            "stale_epoch": True, "epoch": self.lease.epoch, "seq": seq})

    def _handle_ping(self, msg: protocol.Message) -> bytes:
        """Heartbeat reply.  A *leader* ping (meta carries ``epoch``)
        renews the lease — or is fenced when the epoch is below the
        highest seen.  An *observer* ping (no epoch; standbys and legacy
        masters) just reads the lease: the pong's ``leader``/``epoch``/
        ``lease_age_s`` payload is how standbys learn who leads and how
        stale the claim is."""
        seq = msg.meta.get("seq")
        epoch = msg.meta.get("epoch")
        with self._lease_lock:
            if epoch is not None and not self.lease.renew(
                    msg.meta.get("leader"), epoch, self._clock()):
                return self._stale_epoch_reply(seq, epoch)
            return protocol.encode(protocol.PONG, {
                "seq": seq, "leader": self.lease.leader,
                "epoch": self.lease.epoch,
                "lease_age_s": self.lease.age(self._clock())})

    def _handle_attach(self, msg: protocol.Message) -> bytes:
        """The (re-)attach handshake: a master presenting an epoch >= the
        highest seen becomes this worker's leader; lower epochs are
        fenced.  This is how a promoted standby takes over live workers
        — and how a zombie primary learns it has been deposed."""
        seq = msg.meta.get("seq")
        epoch = msg.meta.get("epoch", 0)
        with self._lease_lock:
            if not self.lease.renew(msg.meta.get("leader"), epoch,
                                    self._clock()):
                return self._stale_epoch_reply(seq, epoch)
            return protocol.encode(protocol.ATTACHED,
                                   {"seq": seq, "epoch": self.lease.epoch})

    def _reload_from_store(self) -> None:
        """Swap in the checkpointed expert, if the store holds one.

        An empty or fully-corrupt store is not an error — the worker
        keeps its in-memory expert (a fresh node has nothing to reload).
        """
        from ..store import NoValidGenerationError  # local: optional dep
        try:
            model, _ = self._store.load_expert(self._expert_index)
        except NoValidGenerationError:
            return
        self.expert = model
        self._fingerprint = weights_fingerprint(model)

    def start(self) -> None:
        if self._running:
            return
        if self._store is not None and self._expert_index is not None:
            self._reload_from_store()
        if self._listener is None:
            self._listener = self._transport.listen(self._host, self._port)
        self._running = True
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          args=(self._listener,), daemon=True)
        self._acceptor.start()

    def _accept_loop(self, listener) -> None:
        while self._running and listener is self._listener:
            try:
                sock = listener.accept(timeout=0.2)
            except TimeoutError:
                continue
            except OSError:
                return
            # Reap finished connection threads so the list stays bounded
            # under heavy traffic instead of growing one entry per client.
            self._threads = [t for t in self._threads if t.is_alive()]
            with self._conn_lock:
                self._conns.append(sock)
            worker = threading.Thread(target=self._serve, args=(sock,),
                                      daemon=True)
            worker.start()
            self._threads.append(worker)

    def _handle_deploy(self, sock, msg: protocol.Message) -> bool:
        """Install a pushed expert archive; ack with DEPLOYED.

        Returns False when the connection is beyond use.  A corrupt or
        missing archive costs the sender an error reply and leaves the
        current expert serving — a bad push must never brick the node.
        """
        seq = msg.meta.get("seq")
        blob = msg.arrays.get("model")
        if blob is None:
            return self._safe_send(sock, protocol.encode(
                protocol.ERROR,
                {"error": "deploy without a model archive", "seq": seq}))
        try:
            model, spec = model_from_bytes(
                np.ascontiguousarray(blob, dtype=np.uint8).tobytes())
        except CorruptModelError as exc:
            return self._safe_send(sock, protocol.encode(
                protocol.ERROR, {"error": f"deploy: {exc}", "seq": seq}))
        self.expert = model
        self._fingerprint = weights_fingerprint(model)
        return self._safe_send(sock, protocol.encode(
            protocol.DEPLOYED, {"seq": seq, "spec": spec.name}))

    @staticmethod
    def _safe_send(sock, blob: bytes) -> bool:
        """Best-effort send: a peer that hangs up right before our reply
        (e.g. after sending garbage) must not crash the serve thread."""
        try:
            sock.send(blob)
            return True
        except (ConnectionError, OSError):
            return False

    # ------------------------------------------------------ deadline shed
    def _shed_rows(self, msg: protocol.Message) -> int | None:
        """Row count to shed when the *whole* request's deadline budget
        is spent, else None.  Per-segment budgets defer the decision to
        :meth:`_forward_shedding`, which can still salvage live segments
        of a coalesced batch."""
        meta = msg.meta
        if meta.get("segment_budgets_s") is not None:
            return None
        left = remaining_budget(meta.get("deadline_budget_s"),
                                meta.get("sent_at"), self._clock())
        if left is None or left > 0.0:
            return None
        x = msg.arrays.get("x")
        return 0 if x is None else int(np.asarray(x).shape[0])

    def _forward_shedding(
            self, msg: protocol.Message) -> tuple[ExpertOutput | None, list]:
        """Forward honoring per-segment deadline budgets.

        Returns ``(output, expired_segment_indices)``.  The clock is
        re-read before *each* segment's forward, so a budget that runs
        out mid-batch sheds the remaining doomed segments instead of
        computing them.  Skipped segments come back as uniform
        max-entropy filler rows: :func:`entropy_from_probs` on exactly
        uniform probabilities satisfies the integrity validator's
        recompute, and maximal entropy can never win the arg-min gate.
        ``output`` is None when every segment expired (caller sends one
        whole-request EXPIRED instead).
        """
        x = np.asarray(msg.arrays["x"])
        segments = msg.meta.get("segments")
        budgets = msg.meta.get("segment_budgets_s")
        if (msg.kind != protocol.INFER or budgets is None
                or segments is None):
            output = expert_forward_segments(self.expert, x, segments,
                                             engine=self.engine)
            self.forwards += (len(segments)
                              if segments and len(segments) > 1 else 1)
            return output, []
        if len(budgets) != len(segments):
            raise ValueError(f"{len(budgets)} segment budgets for "
                             f"{len(segments)} segments")
        if sum(segments) != len(x):
            raise ValueError(f"segments {segments} do not cover "
                             f"{len(x)} rows")
        sent_at = msg.meta.get("sent_at")
        pieces: list[ExpertOutput | None] = [None] * len(segments)
        expired: list[int] = []
        offset = 0
        for i, rows in enumerate(segments):
            left = remaining_budget(budgets[i], sent_at, self._clock())
            if left is not None and left <= 0.0:
                expired.append(i)
            else:
                pieces[i] = expert_forward(self.expert,
                                           x[offset:offset + rows],
                                           engine=self.engine)
                self.forwards += 1
            offset += rows
        live = next((p for p in pieces if p is not None), None)
        if live is None:
            return None, expired
        if not expired:
            return ExpertOutput(
                probs=np.concatenate([p.probs for p in pieces], axis=0),
                entropy=np.concatenate([p.entropy for p in pieces],
                                       axis=0)), []
        n_classes = int(live.probs.shape[-1])
        probs_parts, ent_parts = [], []
        for i, rows in enumerate(segments):
            piece = pieces[i]
            if piece is None:
                filler = np.full((rows, n_classes), 1.0 / n_classes,
                                 dtype=live.probs.dtype)
                probs_parts.append(filler)
                ent_parts.append(entropy_from_probs(filler).astype(
                    live.entropy.dtype, copy=False))
            else:
                probs_parts.append(piece.probs)
                ent_parts.append(piece.entropy)
        return ExpertOutput(
            probs=np.concatenate(probs_parts, axis=0),
            entropy=np.concatenate(ent_parts, axis=0)), expired

    def _serve(self, sock) -> None:
        try:
            with sock:
                try:
                    while self._running:
                        try:
                            msg = protocol.decode(sock.recv())
                        except protocol.ProtocolError as exc:
                            # Malformed manifest from an untrusted peer: tell
                            # it why, then drop the connection rather than
                            # trust anything further on this stream.
                            self._safe_send(sock, protocol.encode(
                                protocol.ERROR,
                                {"error": f"bad message: {exc}"}))
                            return
                        if msg.kind == protocol.SHUTDOWN:
                            return
                        if msg.kind == protocol.PING:
                            if not self._safe_send(sock,
                                                   self._handle_ping(msg)):
                                return
                            continue
                        if msg.kind == protocol.ATTACH:
                            if not self._safe_send(sock,
                                                   self._handle_attach(msg)):
                                return
                            continue
                        if msg.kind == protocol.DEPLOY:
                            if not self._handle_deploy(sock, msg):
                                return
                            continue
                        # Replies echo the request's seq so the master can
                        # correlate them: a duplicated or reordered reply from
                        # an earlier request must never be mistaken for the
                        # answer to the current one.
                        seq = msg.meta.get("seq")
                        if msg.kind not in (protocol.INFER, protocol.CANARY):
                            self._safe_send(sock, protocol.encode(
                                protocol.ERROR,
                                {"error": f"unexpected {msg.kind!r}",
                                 "seq": seq}))
                            continue
                        # Epoch fencing: a broadcast from a deposed
                        # master (epoch below the highest seen) must be
                        # refused, not answered — otherwise two masters
                        # could serve conflicting answers during a
                        # failover window.  A current-or-newer epoch
                        # counts as a lease renewal: live traffic is
                        # proof of leader liveness.
                        epoch = msg.meta.get("epoch")
                        if epoch is not None:
                            with self._lease_lock:
                                if not self.lease.renew(
                                        msg.meta.get("leader"), epoch,
                                        self._clock()):
                                    reply = self._stale_epoch_reply(seq,
                                                                    epoch)
                                    if not self._safe_send(sock, reply):
                                        return
                                    continue
                        # Deadline shedding: a request whose budget is
                        # already spent gets a typed EXPIRED reply instead
                        # of a wasted forward — the master books it as
                        # shed, never as a failure.
                        shed_rows = (self._shed_rows(msg)
                                     if msg.kind == protocol.INFER else None)
                        if shed_rows is not None:
                            self.shed_expired += 1
                            if not self._safe_send(sock, protocol.encode(
                                    protocol.EXPIRED,
                                    {"seq": seq, "rows": shed_rows})):
                                return
                            continue
                        try:
                            # ``segments`` marks a coalesced micro-batch
                            # whose per-request row runs must be forwarded
                            # separately for bit-exactness (see
                            # expert_forward_segments).  A canary probe is
                            # an ordinary forward on the known-answer
                            # batch — an honest worker cannot tell probes
                            # from traffic, which is the point.
                            output, expired = self._forward_shedding(msg)
                        except Exception as exc:  # noqa: BLE001 - reply, don't die
                            # A bad input (wrong shape, missing array) must
                            # cost the sender an error reply, not this serve
                            # thread.
                            self._safe_send(sock, protocol.encode(
                                protocol.ERROR,
                                {"error": f"inference: {exc}", "seq": seq}))
                            continue
                        if output is None:
                            # Every segment's budget expired mid-batch.
                            self.shed_expired += 1
                            self.shed_segments += len(expired)
                            rows = int(np.asarray(msg.arrays["x"]).shape[0])
                            if not self._safe_send(sock, protocol.encode(
                                    protocol.EXPIRED,
                                    {"seq": seq, "rows": rows})):
                                return
                            continue
                        reply_meta = {"seq": seq,
                                      "model_version": self._fingerprint}
                        if expired:
                            self.shed_segments += len(expired)
                            reply_meta["expired_segments"] = expired
                        sock.send(protocol.encode(
                            protocol.RESULT, reply_meta, {
                                "probs": output.probs,
                                "entropy": output.entropy,
                            }))
                except (ConnectionError, OSError):
                    return
        finally:
            with self._conn_lock:
                if sock in self._conns:
                    self._conns.remove(sock)

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # Close every live connection: serve threads blocked in recv wake
        # with a connection error and exit instead of leaking.
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.close()
            except (ConnectionError, OSError):
                pass
        if self._acceptor is not None:
            # Wait out the acceptor's poll window so the kernel fully
            # releases the listening port — a restart rebinds the same one.
            self._acceptor.join(timeout=1.0)
            self._acceptor = None
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = [t for t in self._threads if t.is_alive()]


class WorkerFailure(ConnectionError):
    """Raised when collaboration fails and degradation is disabled."""


class LeadershipLost(RuntimeError):
    """This master has been fenced: a worker (or a pong) presented a
    leadership epoch higher than the master's own, meaning a standby was
    promoted in its place.  The master is permanently deposed — every
    subsequent broadcast raises this too — and its callers must re-drive
    pending requests to the new leader
    (:class:`repro.distributed.failover.FailoverServer` does exactly
    that).  Deliberately *not* a ConnectionError: the workers are fine,
    it is this master's claim to them that died."""


class TeamNetMaster:
    """The master node: local expert + connections to all workers.

    ``degrade_on_failure`` enables graceful degradation: if a worker dies
    or misses the gather deadline, the master drops it from the team and
    answers from the remaining experts (each expert only knows part of the
    data, so accuracy degrades — but the system keeps answering).  With
    degradation disabled, a worker failure raises :class:`WorkerFailure`.
    How degraded an answer may get before it is flagged or refused is the
    ``degradation`` policy's call (quorum and entropy ceiling).

    ``reply_timeout`` is a single **per-inference** gather deadline: every
    peer's reply slot is armed with it at broadcast time and the replies
    stream in concurrently through the per-connection demux readers, so
    the total wait is bounded by one deadline no matter how many workers
    straggle.  A *suspected-slow* peer gets a shorter,
    latency-quantile-derived hedge deadline instead (see
    :class:`~repro.distributed.resilience.ResilienceConfig`), so a known
    straggler costs the gather its hedge delay, not the full deadline.

    Failed workers are gated by per-peer circuit breakers: below the
    failure threshold a reconnect is attempted on the next inference;
    once the breaker trips open, the worker receives nothing until the
    open window (``reconnect_backoff`` seconds, doubling per re-trip up
    to ``reconnect_backoff_max``) elapses and a probe succeeds.  A
    worker that comes back (same address) rejoins the team automatically.

    Plain ``infer``/``heartbeat`` calls must not overlap each other.  For
    concurrent callers, wrap the master in a
    :class:`~repro.distributed.serving.TeamNetServer` (or call
    :meth:`serve`): its single dispatcher/collector pair drives the
    split ``_begin``/``_finish`` pipeline underneath, which *is* safe to
    overlap — peer bookkeeping is guarded by the master's state lock and
    replies are correlated by seq, not by call order.
    """

    def __init__(self, expert: Module,
                 worker_addresses: list[tuple[str, int]],
                 degrade_on_failure: bool = False,
                 reply_timeout: float | None = None,
                 reconnect_backoff: float = 0.25,
                 reconnect_backoff_max: float = 5.0,
                 connect_timeout: float = 0.25,
                 transport: Transport | None = None,
                 resilience: ResilienceConfig | None = None,
                 degradation: DegradationPolicy | None = None,
                 store=None, engine: str = "tape",
                 epoch: int | None = None, leader_id: str | None = None,
                 integrity: IntegrityConfig | None = None,
                 canaries: CanarySet | None = None,
                 expected_versions: dict[int, str] | None = None,
                 retry_budget: RetryBudget | None = None,
                 clock=None):
        self.expert = expert
        self.engine = validate_engine(engine)
        self.store = store
        # Leadership identity (master failover).  With an ``epoch`` set,
        # every broadcast/ping/attach carries it and workers fence off
        # anything below the highest epoch they have seen; ``None`` is
        # the legacy single-master mode (no epochs on the wire, never
        # fenced).  ``leader_id`` names this master in pong payloads so
        # standbys can tell *who* leads, not just that someone does.
        self.epoch = None if epoch is None else int(epoch)
        self.leader_id = leader_id
        self._deposed = False
        #: standby-master addresses to push roster deltas to (see
        #: :meth:`announce_roster`); the failover layer registers them.
        self.standbys: list[tuple[str, int]] = []
        self._roster_version = 0
        self.degrade_on_failure = degrade_on_failure
        self.reply_timeout = reply_timeout
        self.connect_timeout = connect_timeout
        # ``clock`` stamps outgoing deadline meta (``sent_at``); inject
        # the testkit's virtual clock so budgets age deterministically on
        # the sim fabric.  It must be the same clock the workers read.
        self._clock = clock if clock is not None else time.monotonic
        # Overload control (repro.distributed.overload).  ``retry_budget``
        # is the shared token bucket gating every load-amplifying retry:
        # reconnect dials, auto-redeploy pushes, hedged gathers, and (via
        # the failover layer) request re-drives.  None = unlimited.
        self.retry_budget = retry_budget
        #: brownout overrides, set by the serving layer's ladder: force
        #: hedging off (False) and/or lower the quorum floor (int).  None
        #: defers to ``resilience.hedging`` / ``degradation.min_quorum``.
        self.hedging_override: bool | None = None
        self.min_quorum_override: int | None = None
        self.resilience = resilience if resilience is not None else \
            ResilienceConfig(reset_timeout=reconnect_backoff,
                             reset_timeout_max=reconnect_backoff_max)
        self.degradation = degradation if degradation is not None else \
            DegradationPolicy()
        self._transport = transport if transport is not None else TcpTransport()
        self._peers = [
            _Peer(i, (host, port), self._transport.connect(host, port),
                  self.resilience)
            for i, (host, port) in enumerate(worker_addresses, start=1)]
        self._latencies = LatencyTracker(self.resilience.latency_window)
        # One seq counter shared by infers and pings: every request gets
        # a unique seq, every reply echoes it, and the demux discards any
        # frame whose seq has no registered waiter (duplicated/reordered
        # deliveries leave stale frames queued on long-lived connections).
        self._request_seq = 0
        # Guards all peer/bookkeeping state: sends, reconnects, failure
        # and success accounting, the seq counter, and the latency window.
        # Never held across a slot wait — I/O waits happen outside it, so
        # a broadcast can begin while an earlier gather is still waiting.
        self._lock = threading.Lock()
        #: cumulative traffic spent on heartbeat probes (not per-inference)
        self.heartbeat_traffic = TransportStats()
        #: cumulative traffic spent pushing models to standby workers
        self.redeploy_traffic = TransportStats()
        #: cumulative traffic spent on known-answer canary probes
        self.canary_traffic = TransportStats()
        # Data-plane integrity (repro.distributed.integrity): reply
        # validation + version fencing on every gather, canary probes on
        # the heartbeat cadence, quarantine on failure.  All optional —
        # with ``integrity=None`` only the always-on structural reply
        # checks run (garbage payloads become WorkerFailure, never a raw
        # numpy error in the gate).
        self.integrity = integrity
        self._validator = (ReplyValidator(integrity)
                           if integrity is not None else None)
        self.quarantine = (QuarantineManager(integrity.readmit_passes)
                           if integrity is not None else None)
        self._expected_versions: dict[int, str] = dict(expected_versions
                                                       or {})
        if (canaries is None and integrity is not None
                and store is not None and hasattr(store, "load_canary")):
            canaries = store.load_canary()
        self._prober = (CanaryProber(integrity, canaries)
                        if integrity is not None and canaries is not None
                        else None)
        # Golden-trace capture for the differential testkit: the expert
        # outputs and original team indices that fed the last selection.
        self.last_outputs: dict[int, ExpertOutput] = {}
        self.last_participants: list[int] = []

    @property
    def team_size(self) -> int:
        return 1 + len(self._peers)

    @property
    def live_team_size(self) -> int:
        return self.team_size - len(self.failed_workers)

    @property
    def failed_workers(self) -> list[int]:
        """Indices of workers currently down (they may yet rejoin)."""
        return [peer.index for peer in self._peers if not peer.alive]

    @property
    def worker_health(self) -> dict[int, WorkerHealth]:
        """Cumulative per-worker reply-latency and failure telemetry."""
        return {peer.index: peer.health for peer in self._peers}

    def resilience_snapshot(self) -> dict[int, PeerResilience]:
        """Control-plane state per worker: breaker, suspicion, latency.

        Render with :func:`repro.edge.monitor.resilience_table`.
        """
        snapshot = {}
        for peer in self._peers:
            record = (self.quarantine.snapshot(peer.index)
                      if self.quarantine is not None else None)
            snapshot[peer.index] = PeerResilience(
                index=peer.index, address=peer.address, alive=peer.alive,
                breaker_state=peer.breaker.state,
                consecutive_failures=peer.breaker.consecutive_failures,
                breaker_trips=peer.breaker.trips,
                suspicion_score=peer.health.suspicion_score,
                suspect=peer.health.suspect,
                ewma_reply_latency_s=peer.health.ewma_reply_latency_s,
                replies=peer.health.replies,
                failures=peer.health.failures,
                timeouts=peer.health.timeouts,
                hedges=peer.health.hedges,
                reconnects=peer.health.reconnects,
                redeployments=peer.health.redeployments,
                invalid_replies=peer.health.invalid_replies,
                quarantined=record.quarantined if record else False,
                quarantines=record.quarantines if record else 0,
                quarantine_reason=record.reason if record else None,
                canary_failures=record.canary_failures if record else 0,
                readmissions=record.readmissions if record else 0,
                expired_replies=peer.health.expired_replies,
                expired_segments=peer.health.expired_segments)
        return snapshot

    @property
    def effective_min_quorum(self) -> int:
        """The quorum floor in force: the brownout override when the
        serving layer lowered it, the degradation policy's otherwise."""
        if self.min_quorum_override is not None:
            return self.min_quorum_override
        return self.degradation.min_quorum

    # ------------------------------------------------------------ recovery
    def _maybe_reconnect(self) -> None:
        """Retry down workers whose circuit breaker admits a probe.

        Caller holds ``_lock``."""
        for peer in self._peers:
            if peer.alive or not peer.breaker.allow():
                continue
            # Reconnect dials draw on the shared retry budget: under
            # overload a fleet of down peers must not amplify load with
            # synchronized dial storms.  A denied token skips this round
            # — the breaker window, not the budget, schedules the next.
            if (self.retry_budget is not None
                    and not self.retry_budget.try_spend()):
                continue
            try:
                sock = self._transport.connect(
                    *peer.address, retries=1, delay=0.0,
                    timeout=self.connect_timeout)
            except (ConnectionError, OSError):
                peer.breaker.record_failure()
                continue
            peer.sock = sock
            peer.channel = ReplyDemux(sock)
            peer.health.reconnects += 1
            # A successful dial is not yet a successful round-trip:
            # the breaker stays where it is (half-open after a trip)
            # until a reply or a pong actually comes back.

    def redeploy(self, index: int, address: tuple[str, int],
                 blob: bytes | None = None,
                 timeout: float | None = 5.0) -> None:
        """Re-provision worker slot ``index`` onto a standby node.

        Degradation keeps the team answering when a worker dies, but a
        *permanently* dead worker would shrink the team forever — and
        each expert only knows its partition, so the lost specialization
        never comes back on its own.  ``redeploy`` restores it: push the
        expert's serialized archive (``blob``, defaulting to the stored
        one from the attached :class:`~repro.store.CheckpointStore`) to
        the standby listening at ``address``, wait for its ``deployed``
        ack, and rewire peer ``index`` to the new node with a fresh
        circuit breaker and failure detector (the replacement must not
        inherit the corpse's open breaker).  Raises
        :class:`WorkerFailure` if the standby is unreachable, rejects
        the archive, or replies with garbage; the old peer state is
        untouched in that case.

        The model push is metered in :attr:`redeploy_traffic`, not in
        any inference's stats.
        """
        if not 1 <= index <= len(self._peers):
            raise IndexError(f"worker index must be 1..{len(self._peers)}, "
                             f"got {index}")
        peer = self._peers[index - 1]
        if blob is None:
            if self.store is None:
                raise ValueError(
                    "redeploy needs a model blob or a checkpoint store "
                    "attached to the master (store=...)")
            blob = self.store.expert_bytes(index)
        try:
            sock = self._transport.connect(*address,
                                           timeout=self.connect_timeout)
        except (ConnectionError, OSError) as exc:
            raise WorkerFailure(
                f"standby {address} for worker {index} is unreachable: "
                f"{exc}") from exc
        with self._lock:
            self._request_seq += 1
            seq = self._request_seq
        # One deadline for the whole ack exchange: draining a stale frame
        # consumes part of it instead of resetting it, so a chatty standby
        # cannot stall redeploy past ``timeout``.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        try:
            sock.send(protocol.encode(
                protocol.DEPLOY, {"seq": seq},
                {"model": np.frombuffer(blob, dtype=np.uint8)}))
            while True:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                reply = protocol.decode(sock.recv(timeout=remaining))
                if reply.meta.get("seq") == seq:
                    break
        except (ConnectionError, OSError, TimeoutError,
                protocol.ProtocolError) as exc:
            # ProtocolError is a ValueError, not a ConnectionError: a
            # standby replying with a malformed frame must surface as a
            # WorkerFailure with the socket closed, not leak the socket
            # and escape as a raw decode error.
            sock.close()
            raise WorkerFailure(
                f"deploy to standby {address} failed: {exc}") from exc
        if reply.kind != protocol.DEPLOYED:
            sock.close()
            raise WorkerFailure(
                f"standby {address} rejected the deploy: "
                f"{reply.meta.get('error', reply.kind)}")
        self.redeploy_traffic.merge(sock.stats)
        sock.stats.reset()
        # Commit the rewire only after a successful ack.
        with self._lock:
            if peer.channel is not None:
                peer.channel.close()
            if peer.sock is not None:
                peer.sock.close()
            peer.sock = sock
            peer.channel = ReplyDemux(sock)
            peer.address = address
            peer.health.address = address
            peer.health.redeployments += 1
            peer.health.detector = SuspicionTracker(
                alpha=self.resilience.ewma_alpha,
                decay=self.resilience.success_decay,
                threshold=self.resilience.suspicion_threshold)
            peer.breaker = CircuitBreaker(
                failure_threshold=self.resilience.failure_threshold,
                reset_timeout=self.resilience.reset_timeout,
                reset_timeout_max=self.resilience.reset_timeout_max,
                jitter=self.resilience.backoff_jitter,
                rng=self.resilience.breaker_rng(index))
            if self._validator is not None:
                # The pushed archive defines the slot's new expected
                # version: replies from here on must stamp it, and a
                # pre-deploy worker reconnecting with the old expert is
                # fenced by the mismatch.
                self._expected_versions[index] = weights_fingerprint(
                    model_from_bytes(blob)[0])
        self._roster_changed()

    def _auto_redeploy(self, peer: _Peer) -> bool:
        """Best-effort push of the stored (known-good) expert onto a slot
        that just failed an integrity check.

        Quarantine without repair would bench the slot forever; the
        checkpoint store holds the weights the slot *should* be running,
        so push them back.  Failures here are swallowed — the slot stays
        quarantined and the next canary failure retries, which *is* the
        retry policy.  Returns True when the redeploy committed.
        """
        if (self.integrity is None or not self.integrity.auto_redeploy
                or self.store is None):
            return False
        from ..store import NoValidGenerationError  # local: optional dep
        # An auto-redeploy is a retry in the budget's sense: it pushes a
        # whole model archive at a cluster that may already be drowning.
        if (self.retry_budget is not None
                and not self.retry_budget.try_spend()):
            return False
        try:
            blob = self.store.expert_bytes(peer.index)
        except (NoValidGenerationError, OSError, KeyError):
            return False
        try:
            self.redeploy(peer.index, tuple(peer.address), blob=blob)
        except (WorkerFailure, OSError):
            return False
        if self.quarantine is not None:
            self.quarantine.note_redeploy(peer.index)
        return True

    # ------------------------------------------------------------- failure
    def _fail(self, peer: _Peer, inference: InferenceStats,
              timed_out: bool = False, hedged: bool = False,
              sink: TransportStats | None = None) -> None:
        """Record a worker failure: salvage the stale frames its demux
        read, close its channel and socket (a late reply on a reused
        connection would desync the frame stream), arm the breaker and
        bump the suspicion score.  Caller holds ``_lock``.  Stale traffic
        is attributed to ``sink`` when given (the heartbeat ledger),
        otherwise to ``inference``."""
        if peer.channel is not None:
            stale, stale_bytes = peer.channel.take_stale()
            if sink is not None:
                sink.messages_received += stale
                sink.bytes_received += stale_bytes
            else:
                inference.stale_replies += stale
                inference.messages_received += stale
                inference.bytes_received += stale_bytes
            peer.channel.close()
            peer.channel = None
        if peer.sock is not None:
            peer.sock.close()
            peer.sock = None
        peer.health.failures += 1
        if timed_out:
            peer.health.timeouts += 1
        if hedged:
            peer.health.hedges += 1
        peer.health.detector.miss()
        peer.breaker.record_failure()
        inference.failures += 1

    # -------------------------------------------------------------- success
    def _record_reply(self, peer: _Peer, latency: float,
                      inference: InferenceStats) -> None:
        """Book-keep one successful reply (caller holds ``_lock``)."""
        inference.reply_latency_s[peer.index] = latency
        peer.health.replies += 1
        peer.health.last_reply_latency_s = latency
        peer.health.total_reply_latency_s += latency
        peer.health.detector.observe(latency)
        peer.breaker.record_success()
        self._latencies.add(latency)

    # -------------------------------------------------------------- hedging
    def _hedge_plan(self, sent: list[_Peer]) -> tuple[float | None, set[int]]:
        """Decide the hedge delay and which of ``sent`` get it.

        Hedging arms once the latency window holds enough samples; the
        delay is ``max(multiplier × Q(quantile), floor)``.  A peer is
        hedged when the failure detector marks it suspect (misses) or its
        latency EWMA already exceeds the hedge delay (it is *expected* to
        miss it).  Hedging is skipped entirely when cutting the suspects
        loose could leave the answer below the quorum — better to burn
        the deadline than to refuse an answer we could have had.
        """
        cfg = self.resilience
        if self.hedging_override is False:
            # Brownout ladder rung 1: hedging off under sustained
            # pressure — hedge deadlines convert slowness into failures
            # and reconnects, the opposite of what overload needs.
            return None, set()
        if not cfg.hedging or len(self._latencies) < cfg.hedge_min_samples:
            return None, set()
        if (self.retry_budget is not None
                and self.retry_budget.available() < 1.0):
            # A hedge that fires becomes a failure + reconnect; with the
            # retry budget drained those amplify load, so pause hedging.
            return None, set()
        delay = max(cfg.hedge_multiplier
                    * self._latencies.quantile(cfg.hedge_quantile),
                    cfg.hedge_floor_s)
        if self.reply_timeout is not None and delay >= self.reply_timeout:
            return None, set()
        suspects = {
            peer.index for peer in sent
            if peer.health.suspect
            or (peer.health.ewma_reply_latency_s is not None
                and peer.health.ewma_reply_latency_s > delay)}
        if not suspects:
            return None, set()
        if 1 + len(sent) - len(suspects) < self.effective_min_quorum:
            return None, set()
        return delay, suspects

    # ----------------------------------------------------------- broadcast
    def _begin(self, x: np.ndarray,
               segments: list[int] | None = None,
               deadline_budget_s: float | None = None,
               segment_budgets_s: list[float | None] | None = None
               ) -> _Pending:
        """Step 2: broadcast ``x`` to every admissible peer.

        ``deadline_budget_s`` is the request's remaining relative budget
        at send time; ``segment_budgets_s`` carries per-request budgets
        for a coalesced batch (parallel to ``segments``, None entries =
        no deadline).  Either stamps ``sent_at`` from the master's clock
        so workers sharing a comparable clock can charge transit time
        and shed expired work before the forward.

        Registers one reply slot per peer (armed with the hedge delay for
        suspects, ``reply_timeout`` otherwise) *before* sending, so a
        fast reply can never race past its waiter.  Returns the
        :class:`_Pending` handle that :meth:`_finish` turns into an
        answer; several may be in flight at once — the serving core's
        pipeline — as long as a single thread at a time calls ``_begin``
        (framed sends on a shared connection must not interleave).
        """
        x = np.asarray(x)
        inference = InferenceStats()
        with self._lock:
            if self._deposed:
                raise LeadershipLost(
                    f"master {self.leader_id or ''} (epoch {self.epoch}) "
                    "has been fenced by a higher epoch")
            self._maybe_reconnect()
            quarantined = (set(self.quarantine.quarantined())
                           if self.quarantine is not None else set())
            if not self.degrade_on_failure:
                down = self.failed_workers
                if down:
                    raise WorkerFailure(f"workers {down} are down and "
                                        "degradation is disabled")
                if quarantined:
                    raise WorkerFailure(
                        f"workers {sorted(quarantined)} are quarantined "
                        "and degradation is disabled")
            self._request_seq += 1
            seq = self._request_seq
            meta: dict = {"seq": seq}
            if self.epoch is not None:
                meta["epoch"] = self.epoch
            if segments is not None and len(segments) > 1:
                meta["segments"] = [int(s) for s in segments]
            if deadline_budget_s is not None:
                meta["deadline_budget_s"] = float(deadline_budget_s)
            # Segment budgets only make sense alongside the "segments"
            # meta (len > 1); a single-request batch rides the
            # whole-request ``deadline_budget_s`` instead.
            if (segment_budgets_s is not None and segments is not None
                    and len(segments) > 1
                    and any(b is not None for b in segment_budgets_s)):
                if len(segment_budgets_s) != len(segments):
                    raise ValueError(
                        f"{len(segment_budgets_s)} segment budgets for "
                        f"{len(segments)} segments")
                meta["segment_budgets_s"] = [
                    None if b is None else float(b)
                    for b in segment_budgets_s]
            if "deadline_budget_s" in meta or "segment_budgets_s" in meta:
                meta["sent_at"] = float(self._clock())
            request = protocol.encode(protocol.INFER, meta, {"x": x})
            # A quarantined slot gets no broadcast: its answers are
            # untrustworthy, so it earns no gate entry and no quorum
            # credit.  It still receives canary probes — the only road
            # back to the team.
            targets = [peer for peer in self._peers
                       if peer.alive and peer.breaker.allow()
                       and peer.index not in quarantined]
            hedge_delay, hedged_set = self._hedge_plan(targets)
            inference.hedge_delay_s = hedge_delay
            waits: list[tuple[_Peer, ReplySlot]] = []
            for peer in targets:
                allowance = (hedge_delay if peer.index in hedged_set
                             else self.reply_timeout)
                slot = None
                try:
                    slot = peer.channel.expect(seq, allowance)
                    peer.sock.send(request)
                except (ConnectionError, OSError) as exc:
                    if slot is not None:
                        slot.cancel()
                    self._fail(peer, inference)
                    if not self.degrade_on_failure:
                        for _, pending_slot in waits:
                            pending_slot.cancel()
                        raise WorkerFailure(
                            f"worker {peer.index} failed: {exc}") from exc
                    continue
                inference.messages_sent += 1
                inference.bytes_sent += FRAME_OVERHEAD_BYTES + len(request)
                waits.append((peer, slot))
        return _Pending(x, seq, segments, waits, inference, hedged_set)

    # -------------------------------------------------------------- gather
    def _finish(self, pending: _Pending, local_output: ExpertOutput
                ) -> tuple[np.ndarray, np.ndarray, InferenceStats]:
        """Steps 4–5: collect the replies for one broadcast and select.

        Waits out each peer's reply slot (the per-connection readers are
        already collecting concurrently; slot deadlines are absolute from
        broadcast time, so sequential waiting compounds nothing), books
        successes and failures, then runs the arg-min gate and the
        degradation policy.  One thread at a time may call ``_finish``,
        but it may overlap ``_begin`` calls for later requests.
        """
        inference = pending.inference
        gather_start = time.monotonic()
        results: dict[int, ExpertOutput | Exception] = {}
        fenced_epoch: int | None = None
        for peer, slot in pending.waits:
            try:
                message, latency, nbytes = slot.wait()
                inference.messages_received += 1
                inference.bytes_received += nbytes
                if message.kind == protocol.EXPIRED:
                    # The worker shed this request for deadline: load
                    # shedding, not a fault.  The reply proves liveness
                    # (decay suspicion, close a half-open breaker) but
                    # carries no compute latency and no gate entry.
                    with self._lock:
                        inference.expired_replies += 1
                        peer.health.expired_replies += 1
                        peer.health.detector.observe()
                        peer.breaker.record_success()
                    results[peer.index] = None
                    continue
                if message.kind != protocol.RESULT:
                    if message.meta.get("stale_epoch"):
                        fenced_epoch = message.meta.get("epoch")
                    raise WorkerFailure(
                        "worker failure: "
                        f"{message.meta.get('error', message.kind)}")
                probs = message.arrays.get("probs")
                entropy = message.arrays.get("entropy")
                rows = pending.x.shape[0]
                # Structural checks are always on: a wrong-shaped reply
                # would otherwise crash the gate's np.stack with a raw
                # numpy error instead of surfacing as a worker failure.
                reason = structural_reason(probs, entropy, rows)
                if reason is None and self._validator is not None:
                    claimed = message.meta.get("model_version")
                    with self._lock:
                        expected = self._expected_versions.get(peer.index)
                    reason = self._validator.validate(
                        probs, entropy, rows,
                        claimed_version=claimed,
                        expected_version=expected)
                    if (reason is None and expected is None
                            and claimed is not None
                            and self.integrity.pin_first_version):
                        # Trust-on-first-use: pin the first stamped
                        # version so later swaps (a stale worker
                        # reconnecting after a redeploy it missed) are
                        # fenced even when no deploy recorded a version.
                        with self._lock:
                            self._expected_versions.setdefault(
                                peer.index, claimed)
                if reason is not None:
                    raise IntegrityViolation(
                        f"worker {peer.index}: {reason}")
                outcome: ExpertOutput | Exception = ExpertOutput(
                    probs=probs, entropy=entropy)
                shed_segments = message.meta.get("expired_segments")
                with self._lock:
                    self._record_reply(peer, latency, inference)
                    if shed_segments:
                        # Mid-batch deadline sheds: the reply is live and
                        # valid (filler rows are uniform max-entropy and
                        # cannot win the gate), but the shed work must be
                        # booked so benches see it.
                        inference.expired_segments += len(shed_segments)
                        peer.health.expired_segments += len(shed_segments)
            except Exception as exc:  # noqa: BLE001 - booked as a failure
                outcome = exc
            results[peer.index] = outcome
        inference.gather_s = time.monotonic() - gather_start
        hedge_missed = sorted(
            index for index in pending.hedged_set
            if isinstance(results.get(index), TimeoutError))
        if hedge_missed:
            inference.hedged = True
            inference.hedged_workers = hedge_missed
        outputs = [local_output]
        indices = [0]
        first_error: tuple[_Peer, Exception] | None = None
        quarantine_actions: list[tuple[_Peer, str]] = []
        with self._lock:
            for peer, _ in pending.waits:
                outcome = results[peer.index]
                if outcome is None:
                    # EXPIRED reply: already booked as shed in the wait
                    # loop — no gate entry, no quorum credit, no failure.
                    continue
                if isinstance(outcome, ExpertOutput):
                    outputs.append(outcome)
                    indices.append(peer.index)
                elif isinstance(outcome, IntegrityViolation):
                    # The connection is fine — the *data* lies.  Book the
                    # failure without closing the socket: the channel must
                    # stay healthy so canary probes can later readmit (or
                    # keep condemning) the slot.
                    inference.failures += 1
                    inference.invalid_replies += 1
                    peer.health.failures += 1
                    peer.health.invalid_replies += 1
                    peer.health.detector.miss()
                    quarantine_actions.append((peer, str(outcome)))
                    if first_error is None:
                        first_error = (peer, outcome)
                else:
                    self._fail(peer, inference,
                               timed_out=isinstance(outcome, TimeoutError),
                               hedged=peer.index in inference.hedged_workers)
                    if first_error is None:
                        first_error = (peer, outcome)
            # Stale frames the surviving demux readers absorbed during
            # this gather: count and meter them here so the traffic
            # ledger stays complete (failed peers were drained in _fail).
            for peer, _ in pending.waits:
                if peer.channel is not None:
                    stale, stale_bytes = peer.channel.take_stale()
                    inference.stale_replies += stale
                    inference.messages_received += stale
                    inference.bytes_received += stale_bytes
        # Quarantine outside the lock (auto-redeploy pushes a model over
        # the network) but before any raise below: a slot that lied must
        # be benched even when this gather also ends in an error.
        for peer, reason in quarantine_actions:
            if self.quarantine is not None:
                self.quarantine.record_invalid(peer.index, reason)
                self._auto_redeploy(peer)
        # A stale-epoch refusal outranks every other failure mode, and
        # fires even with degradation enabled: a deposed master must not
        # keep serving "degraded" answers from whatever workers its
        # broadcasts still reach before they learn of the new leader.
        if fenced_epoch is not None:
            with self._lock:
                self._deposed = True
            raise LeadershipLost(
                f"epoch {self.epoch} fenced: a worker has accepted "
                f"leadership epoch {fenced_epoch}")
        if first_error is not None and not self.degrade_on_failure:
            peer, exc = first_error
            raise WorkerFailure(f"worker {peer.index} failed: {exc}") from exc
        # Step 5: least-uncertainty selection.
        preds, winner = argmin_select(outputs)
        winner = np.asarray(indices)[winner]
        self.last_outputs = dict(zip(indices, outputs))
        self.last_participants = list(indices)
        # Degradation accounting: how partial is this answer, and does the
        # policy allow returning it?
        inference.participants = len(indices)
        inference.degraded = len(indices) < self.team_size
        entropies = np.stack([o.entropy for o in outputs], axis=1)
        winner_entropy = entropies.min(axis=1)
        max_winner_entropy = (float(winner_entropy.max())
                              if winner_entropy.size else None)
        violations = self.degradation.violations(
            len(indices), max_winner_entropy,
            min_quorum=self.min_quorum_override)
        if violations and self.degradation.on_violation == "raise":
            raise QuorumError("; ".join(violations))
        inference.violations = violations
        return preds, winner, inference

    # --------------------------------------------------------------- infer
    def infer(self, x: np.ndarray,
              deadline_budget_s: float | None = None
              ) -> tuple[np.ndarray, np.ndarray, InferenceStats]:
        """One collaborative inference over the team.

        Returns (predictions, winning expert index, traffic stats).  The
        master's own expert is index 0; workers follow in connection
        order.  Winning indices refer to the *original* team numbering
        even after degradation.

        ``deadline_budget_s`` propagates a per-request latency budget to
        the workers: a worker whose copy arrives with the budget already
        spent sheds the forward and replies ``EXPIRED`` (booked as a
        shed, not a failure).  The master still computes its local
        expert — the caller asked it directly, so it always answers.
        """
        pending = self._begin(x, deadline_budget_s=deadline_budget_s)
        # Step 3: run the local expert while the workers compute.
        local_output = expert_forward(self.expert, pending.x,
                                      engine=self.engine)
        return self._finish(pending, local_output)

    def serve(self, **kwargs):
        """Wrap this master in a concurrent micro-batching
        :class:`~repro.distributed.serving.TeamNetServer` (started)."""
        from .serving import TeamNetServer  # local: avoid import cycle
        server = TeamNetServer(self, **kwargs)
        server.start()
        return server

    # ----------------------------------------------------------- heartbeat
    def heartbeat(self, timeout: float | None = None) -> dict[int, float | None]:
        """Probe every admissible peer with a ``ping`` and collect pongs.

        Returns ``{worker index: round-trip seconds, or None}`` (``None``
        for peers that are down, breaker-blocked, or missed the probe).
        Successful pongs feed the failure detector and close half-open
        breakers — this is the cheap probe path that re-admits a worker
        without risking a full broadcast on it.  Heartbeat traffic
        accumulates in :attr:`heartbeat_traffic`, not in any inference's
        stats.

        A pong that lands *after* its slot's deadline has been booked as
        a timeout is counted stale by the demux — it can no longer
        resurrect a peer whose socket the timeout path already closed
        (the late-pong race the per-call probe threads used to have).
        """
        timeout = (timeout if timeout is not None
                   else self.resilience.heartbeat_timeout)
        scratch = InferenceStats()  # counter sink for _fail bookkeeping
        rtts: dict[int, float | None] = {p.index: None for p in self._peers}
        fenced_epoch: int | None = None
        with self._lock:
            self._maybe_reconnect()
            self._request_seq += 1
            seq = self._request_seq
            meta: dict = {"seq": seq}
            if self.epoch is not None:
                # A leader ping renews the lease on every worker — the
                # heartbeat loop *is* the lease renewal path.
                meta["epoch"] = self.epoch
                meta["leader"] = self.leader_id
            ping = protocol.encode(protocol.PING, meta)
            waits: list[tuple[_Peer, ReplySlot]] = []
            for peer in self._peers:
                if not peer.alive or not peer.breaker.allow():
                    continue
                slot = None
                try:
                    slot = peer.channel.expect(seq, timeout)
                    peer.sock.send(ping)
                except (ConnectionError, OSError):
                    if slot is not None:
                        slot.cancel()
                    self._fail(peer, scratch, sink=self.heartbeat_traffic)
                    continue
                self.heartbeat_traffic.messages_sent += 1
                self.heartbeat_traffic.bytes_sent += \
                    FRAME_OVERHEAD_BYTES + len(ping)
                waits.append((peer, slot))
        for peer, slot in waits:
            try:
                message, latency, nbytes = slot.wait()
                self.heartbeat_traffic.messages_received += 1
                self.heartbeat_traffic.bytes_received += nbytes
                if message.kind != protocol.PONG:
                    if message.meta.get("stale_epoch"):
                        fenced_epoch = message.meta.get("epoch")
                    raise WorkerFailure(
                        f"worker {peer.index}: expected pong seq {seq}, "
                        f"got {message.kind!r} {message.meta}")
                pong_epoch = message.meta.get("epoch")
                if (self.epoch is not None and pong_epoch is not None
                        and pong_epoch > self.epoch):
                    fenced_epoch = pong_epoch
                rtts[peer.index] = latency
                with self._lock:
                    # Pongs carry no expert compute: decay the suspicion
                    # score but leave the reply-latency EWMA untouched.
                    peer.health.detector.observe()
                    peer.breaker.record_success()
            except Exception as exc:  # noqa: BLE001 - booked as a failure
                with self._lock:
                    self._fail(peer, scratch,
                               timed_out=isinstance(exc, TimeoutError),
                               sink=self.heartbeat_traffic)
        with self._lock:
            for peer, _ in waits:
                if peer.channel is not None:
                    stale, stale_bytes = peer.channel.take_stale()
                    self.heartbeat_traffic.messages_received += stale
                    self.heartbeat_traffic.bytes_received += stale_bytes
        if fenced_epoch is not None:
            with self._lock:
                self._deposed = True
            raise LeadershipLost(
                f"epoch {self.epoch} fenced during heartbeat: a worker "
                f"follows leadership epoch {fenced_epoch}")
        # Canary probes ride the heartbeat cadence: every ``probe_every``
        # beats the known-answer batch goes out on the same wire.
        if self._prober is not None and self._prober.due():
            self.canary_probe()
        return rtts

    # ------------------------------------------------------------ integrity
    def canary_probe(self, timeout: float | None = None) -> dict[int, str]:
        """Send the known-answer canary batch to every reachable worker.

        Each reply is judged against the golden outputs recorded at
        deploy time (:class:`~repro.distributed.integrity.CanaryProber`).
        Quarantined slots are probed too — consecutive passes are their
        only road back to the gate; a failure re-arms the quarantine and
        retries the auto-redeploy.  Normally fired from
        :meth:`heartbeat` on the ``probe_every`` cadence, but callable
        directly.  Traffic is metered in :attr:`canary_traffic`.

        Returns ``{worker index: outcome}`` where outcome is ``"pass"``,
        ``"readmitted"``, ``"unreachable"``, or the failure reason.
        """
        if self._prober is None:
            raise ValueError(
                "canary_probe() needs integrity=IntegrityConfig(...) and "
                "a canary set (canaries=... or a checkpoint store that "
                "holds one)")
        timeout = (timeout if timeout is not None
                   else self.reply_timeout
                   if self.reply_timeout is not None
                   else self.resilience.heartbeat_timeout)
        scratch = InferenceStats()
        outcomes: dict[int, str] = {}
        fenced_epoch: int | None = None
        with self._lock:
            self._maybe_reconnect()
            self._request_seq += 1
            seq = self._request_seq
            meta: dict = {"seq": seq}
            if self.epoch is not None:
                meta["epoch"] = self.epoch
                meta["leader"] = self.leader_id
            request = protocol.encode(protocol.CANARY, meta,
                                      {"x": self._prober.canaries.x})
            waits: list[tuple[_Peer, ReplySlot]] = []
            for peer in self._peers:
                # Quarantined slots ARE probed (unlike broadcasts): the
                # canary verdict is what readmits or keeps benching them.
                if not peer.alive or not peer.breaker.allow():
                    continue
                slot = None
                try:
                    slot = peer.channel.expect(seq, timeout)
                    peer.sock.send(request)
                except (ConnectionError, OSError):
                    if slot is not None:
                        slot.cancel()
                    self._fail(peer, scratch, sink=self.canary_traffic)
                    outcomes[peer.index] = "unreachable"
                    continue
                self.canary_traffic.messages_sent += 1
                self.canary_traffic.bytes_sent += \
                    FRAME_OVERHEAD_BYTES + len(request)
                waits.append((peer, slot))
        quarantine_actions: list[tuple[_Peer, str]] = []
        for peer, slot in waits:
            try:
                message, latency, nbytes = slot.wait()
                self.canary_traffic.messages_received += 1
                self.canary_traffic.bytes_received += nbytes
                if message.kind != protocol.RESULT:
                    if message.meta.get("stale_epoch"):
                        fenced_epoch = message.meta.get("epoch")
                    raise WorkerFailure(
                        f"canary: error reply: "
                        f"{message.meta.get('error', message.kind)}")
            except Exception as exc:  # noqa: BLE001 - booked as a failure
                with self._lock:
                    self._fail(peer, scratch,
                               timed_out=isinstance(exc, TimeoutError),
                               sink=self.canary_traffic)
                outcomes[peer.index] = "unreachable"
                continue
            with self._lock:
                expected = self._expected_versions.get(peer.index)
            reason = self._prober.evaluate(
                peer.index,
                message.arrays.get("probs"),
                message.arrays.get("entropy"),
                claimed_version=message.meta.get("model_version"),
                expected_version=expected)
            if reason is None:
                with self._lock:
                    # A passing canary is a real forward pass: it closes
                    # half-open breakers and decays suspicion, the same
                    # re-admission probes heartbeats provide.
                    peer.health.detector.observe(latency)
                    peer.breaker.record_success()
                readmitted = (self.quarantine.record_canary_pass(peer.index)
                              if self.quarantine is not None else False)
                outcomes[peer.index] = "readmitted" if readmitted else "pass"
            else:
                with self._lock:
                    peer.health.failures += 1
                    peer.health.invalid_replies += 1
                    peer.health.detector.miss()
                quarantine_actions.append((peer, reason))
                outcomes[peer.index] = reason
        with self._lock:
            for peer, _ in waits:
                if peer.channel is not None:
                    stale, stale_bytes = peer.channel.take_stale()
                    self.canary_traffic.messages_received += stale
                    self.canary_traffic.bytes_received += stale_bytes
        if fenced_epoch is not None:
            with self._lock:
                self._deposed = True
            raise LeadershipLost(
                f"epoch {self.epoch} fenced during canary probe: a worker "
                f"follows leadership epoch {fenced_epoch}")
        for peer, reason in quarantine_actions:
            if self.quarantine is not None:
                self.quarantine.record_canary_failure(peer.index, reason)
            # Every canary failure retries the repair — this *is* the
            # redeploy retry policy for a persistently sick slot.
            self._auto_redeploy(peer)
        return outcomes

    def predict(self, x: np.ndarray) -> np.ndarray:
        preds, _, _ = self.infer(x)
        return preds

    # ---------------------------------------------------------- leadership
    @property
    def deposed(self) -> bool:
        """Has a higher epoch fenced this master off the team?"""
        with self._lock:
            return self._deposed

    def roster(self) -> dict[int, tuple[str, int]]:
        """The current worker roster: ``{team index: address}``."""
        with self._lock:
            return {peer.index: tuple(peer.address) for peer in self._peers}

    def attach(self, timeout: float | None = None) -> dict[int, bool]:
        """Present this master's leadership epoch to every worker.

        The (re-)attach handshake: each reachable worker either accepts
        (its lease now names this master at ``epoch``) or fences us off
        with a ``stale_epoch`` error because it already follows a higher
        epoch — in which case this master is permanently deposed and
        :class:`LeadershipLost` is raised.  Returns ``{worker index:
        attached}`` (False = unreachable or missed the deadline; those
        workers learn the epoch from the next broadcast or heartbeat
        instead).  Traffic is metered with the heartbeats.
        """
        if self.epoch is None:
            raise ValueError("attach() needs a master with a leadership "
                             "epoch (epoch=...)")
        timeout = (timeout if timeout is not None
                   else self.resilience.heartbeat_timeout)
        scratch = InferenceStats()
        acks: dict[int, bool] = {p.index: False for p in self._peers}
        fenced_epoch: int | None = None
        with self._lock:
            self._maybe_reconnect()
            self._request_seq += 1
            seq = self._request_seq
            request = protocol.encode(protocol.ATTACH, {
                "seq": seq, "epoch": self.epoch, "leader": self.leader_id})
            waits: list[tuple[_Peer, ReplySlot]] = []
            for peer in self._peers:
                if not peer.alive or not peer.breaker.allow():
                    continue
                slot = None
                try:
                    slot = peer.channel.expect(seq, timeout)
                    peer.sock.send(request)
                except (ConnectionError, OSError):
                    if slot is not None:
                        slot.cancel()
                    self._fail(peer, scratch, sink=self.heartbeat_traffic)
                    continue
                self.heartbeat_traffic.messages_sent += 1
                self.heartbeat_traffic.bytes_sent += \
                    FRAME_OVERHEAD_BYTES + len(request)
                waits.append((peer, slot))
        for peer, slot in waits:
            try:
                message, _, nbytes = slot.wait()
                self.heartbeat_traffic.messages_received += 1
                self.heartbeat_traffic.bytes_received += nbytes
                if message.kind != protocol.ATTACHED:
                    if message.meta.get("stale_epoch"):
                        fenced_epoch = message.meta.get("epoch")
                    raise WorkerFailure(
                        f"worker {peer.index} refused attach: "
                        f"{message.meta.get('error', message.kind)}")
                acks[peer.index] = True
                with self._lock:
                    peer.health.detector.observe()
                    peer.breaker.record_success()
            except Exception as exc:  # noqa: BLE001 - booked as a failure
                with self._lock:
                    self._fail(peer, scratch,
                               timed_out=isinstance(exc, TimeoutError),
                               sink=self.heartbeat_traffic)
        with self._lock:
            for peer, _ in waits:
                if peer.channel is not None:
                    stale, stale_bytes = peer.channel.take_stale()
                    self.heartbeat_traffic.messages_received += stale
                    self.heartbeat_traffic.bytes_received += stale_bytes
        if fenced_epoch is not None:
            with self._lock:
                self._deposed = True
            raise LeadershipLost(
                f"attach at epoch {self.epoch} fenced: a worker follows "
                f"leadership epoch {fenced_epoch}")
        # Taking (or re-taking) leadership is a membership event: persist
        # the roster under the new epoch and push the delta to standbys.
        self._roster_changed()
        return acks

    def announce_roster(self, timeout: float | None = 2.0
                        ) -> dict[tuple[str, int], bool]:
        """Push the current worker roster to every registered standby.

        Best-effort, synchronous per standby: dial, send one ``roster``
        message (monotonic ``version`` so an old delta can never
        overwrite a newer one), wait for the ack, close.  Returns
        ``{standby address: acked}``; an unreachable standby is False,
        never an exception — it will hydrate the roster from the
        checkpoint store when it promotes.  Traffic is metered in
        :attr:`redeploy_traffic` (roster deltas are control-plane
        provisioning, like model pushes).
        """
        with self._lock:
            self._request_seq += 1
            seq = self._request_seq
            self._roster_version += 1
            message = protocol.encode(protocol.ROSTER, {
                "seq": seq, "epoch": self.epoch,
                "version": self._roster_version,
                "roster": [[peer.index, peer.address[0], peer.address[1]]
                           for peer in self._peers]})
        return {tuple(address): self._push_roster(address, message, seq,
                                                  timeout)
                for address in list(self.standbys)}

    def _push_roster(self, address, message: bytes, seq: int,
                     timeout: float | None) -> bool:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        try:
            sock = self._transport.connect(*address,
                                           timeout=self.connect_timeout)
        except (ConnectionError, OSError):
            return False
        try:
            sock.send(message)
            while True:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                reply = protocol.decode(sock.recv(timeout=remaining))
                if reply.meta.get("seq") == seq:
                    break
            return reply.kind == protocol.ROSTER_OK
        except (ConnectionError, OSError, TimeoutError,
                protocol.ProtocolError):
            return False
        finally:
            self.redeploy_traffic.merge(sock.stats)
            sock.close()

    def _roster_changed(self) -> None:
        """Membership changed (redeploy): persist the roster and fan the
        delta out to the hot standbys, so a later promotion starts from
        the live team, not a stale snapshot."""
        if self.store is not None and hasattr(self.store, "save_roster"):
            try:
                self.store.save_roster(self.roster(), epoch=self.epoch or 0,
                                       leader=self.leader_id)
            except OSError:
                pass  # durability is best-effort here; deltas still flow
        if self.standbys:
            self.announce_roster()

    def close(self) -> None:
        for peer in self._peers:
            if peer.channel is not None:
                peer.channel.close()
                peer.channel = None
            if peer.sock is None:
                continue
            try:
                peer.sock.send(protocol.encode(protocol.SHUTDOWN))
            except (ConnectionError, OSError):
                pass
            peer.sock.close()
            peer.sock = None


def deploy_local_team(experts: list[Module], degrade_on_failure: bool = False,
                      reply_timeout: float | None = None,
                      reconnect_backoff: float = 0.25,
                      reconnect_backoff_max: float = 5.0,
                      transport: Transport | None = None, host: str = "127.0.0.1",
                      resilience: ResilienceConfig | None = None,
                      degradation: DegradationPolicy | None = None,
                      engine: str = "tape",
                      integrity: IntegrityConfig | None = None,
                      canaries: CanarySet | None = None,
                      store=None
                      ) -> tuple[TeamNetMaster, list[ExpertWorker]]:
    """Deploy expert 0 as master and the rest as localhost workers.

    ``transport`` selects the fabric (real TCP by default; the testkit
    passes a :class:`repro.testkit.SimTransport` to run the identical
    protocol in-process).  ``resilience``/``degradation`` configure the
    control plane (breakers, hedging, quorum); see
    :mod:`repro.distributed.resilience`.  ``integrity`` arms the
    data-plane defenses (:mod:`repro.distributed.integrity`); the
    expected model versions are fingerprinted from the live experts at
    deploy time, so a later weight swap on any worker is fenced.
    Callers must ``master.close()`` then ``worker.stop()`` when done.
    """
    if len(experts) < 2:
        raise ValueError("a team needs >= 2 experts")
    workers = []
    for expert in experts[1:]:
        worker = ExpertWorker(expert, host=host, transport=transport,
                              engine=engine)
        worker.start()
        workers.append(worker)
    expected_versions = None
    if integrity is not None:
        # This deployment hands each worker its expert directly, so the
        # deploy-time fingerprints are authoritative from the first reply.
        expected_versions = {index: weights_fingerprint(expert)
                             for index, expert in enumerate(experts)
                             if index >= 1}
    master = TeamNetMaster(experts[0], [w.address for w in workers],
                           degrade_on_failure=degrade_on_failure,
                           reply_timeout=reply_timeout,
                           reconnect_backoff=reconnect_backoff,
                           reconnect_backoff_max=reconnect_backoff_max,
                           transport=transport,
                           resilience=resilience,
                           degradation=degradation,
                           engine=engine,
                           integrity=integrity,
                           canaries=canaries,
                           expected_versions=expected_versions,
                           store=store)
    return master, workers
