"""TeamNet's distributed inference runtime (Figure 1(d), Section III).

One expert per edge node.  The node that receives the sensor input is the
*master*: it broadcasts the input to all peer *workers* (Step 2), runs its
own expert in parallel (Step 3), gathers every worker's (prediction,
uncertainty) pair (Step 4) and selects the least-uncertain answer (Step 5).
Communication is plain framed TCP — one message out and one small message
back per worker, which is the paper's whole latency argument against MPI.

The gather is *concurrent and fault-aware*: one reader thread per peer
collects replies simultaneously under a single per-inference deadline
(``reply_timeout``), so one slow or dead worker costs at most one deadline
— never K× — and never blocks the reads from faster peers.  A peer that
misses the deadline has its socket closed (a late reply on a reused
connection would desync the frame stream) and is retried with capped
exponential backoff on later inferences, so a worker that rejoins after a
transient network blip is welcomed back instead of blacklisted forever.

``deploy_local_team`` spins a worker thread per expert on localhost so the
whole protocol runs for real in tests and examples.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..comm import protocol
from ..comm.base import Transport
from ..comm.transport import (MeteredSocket, TcpTransport, TransportStats)
from ..core.inference import ExpertOutput, argmin_select, expert_forward
from ..nn import Module

__all__ = ["ExpertWorker", "TeamNetMaster", "WorkerFailure", "WorkerHealth",
           "deploy_local_team", "InferenceStats"]


@dataclass
class InferenceStats:
    """Traffic and gather telemetry observed by the master for one
    inference.

    Byte/message counters include traffic to workers that later failed:
    the broadcast bytes went on the wire whether or not a reply came back,
    and the edge cost model must charge for them.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    gather_s: float = 0.0
    reply_latency_s: dict[int, float] = field(default_factory=dict)
    failures: int = 0

    @classmethod
    def from_transport(cls, stats: TransportStats) -> "InferenceStats":
        return cls(stats.messages_sent, stats.bytes_sent,
                   stats.messages_received, stats.bytes_received)


@dataclass
class WorkerHealth:
    """Cumulative per-worker telemetry kept by the master across the
    lifetime of the connection (survives reconnects)."""

    index: int
    address: tuple[str, int]
    replies: int = 0
    failures: int = 0
    timeouts: int = 0
    reconnects: int = 0
    last_reply_latency_s: float | None = None
    total_reply_latency_s: float = 0.0

    @property
    def mean_reply_latency_s(self) -> float | None:
        if not self.replies:
            return None
        return self.total_reply_latency_s / self.replies


class _Peer:
    """Connection state for one worker: socket (None while down) plus the
    reconnect backoff clock and cumulative health counters."""

    __slots__ = ("index", "address", "sock", "health", "backoff_s",
                 "retry_at")

    def __init__(self, index: int, address: tuple[str, int],
                 sock: MeteredSocket | None):
        self.index = index
        self.address = address
        self.sock = sock
        self.health = WorkerHealth(index=index, address=address)
        self.backoff_s = 0.0
        self.retry_at = 0.0

    @property
    def alive(self) -> bool:
        return self.sock is not None


class ExpertWorker:
    """An edge node hosting one expert behind a listening socket.

    ``stop()`` followed by ``start()`` restarts the worker on the *same*
    port, so a master holding the old address can reconnect to it — this
    is what makes recovery after a node reboot possible without
    redeploying the team.
    """

    def __init__(self, expert: Module, host: str = "127.0.0.1", port: int = 0,
                 transport: Transport | None = None):
        self.expert = expert
        self._host = host
        self._transport = transport if transport is not None else TcpTransport()
        self._listener = self._transport.listen(host, port)
        self._port = self._listener.port  # pin the port for restarts
        self._running = False
        self._threads: list[threading.Thread] = []
        self._acceptor: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    def start(self) -> None:
        if self._running:
            return
        if self._listener is None:
            self._listener = self._transport.listen(self._host, self._port)
        self._running = True
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          args=(self._listener,), daemon=True)
        self._acceptor.start()

    def _accept_loop(self, listener) -> None:
        while self._running and listener is self._listener:
            try:
                sock = listener.accept(timeout=0.2)
            except TimeoutError:
                continue
            except OSError:
                return
            # Reap finished connection threads so the list stays bounded
            # under heavy traffic instead of growing one entry per client.
            self._threads = [t for t in self._threads if t.is_alive()]
            worker = threading.Thread(target=self._serve, args=(sock,),
                                      daemon=True)
            worker.start()
            self._threads.append(worker)

    def _serve(self, sock) -> None:
        with sock:
            try:
                while self._running:
                    try:
                        msg = protocol.decode(sock.recv())
                    except protocol.ProtocolError as exc:
                        # Malformed manifest from an untrusted peer: tell it
                        # why, then drop the connection rather than trust
                        # anything further on this stream.
                        sock.send(protocol.encode(
                            "error", {"error": f"bad message: {exc}"}))
                        return
                    if msg.kind == "shutdown":
                        return
                    if msg.kind != "infer":
                        sock.send(protocol.encode(
                            "error", {"error": f"unexpected {msg.kind!r}"}))
                        continue
                    output = expert_forward(self.expert, msg.arrays["x"])
                    sock.send(protocol.encode("result", {}, {
                        "probs": output.probs,
                        "entropy": output.entropy,
                    }))
            except (ConnectionError, OSError):
                return

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._acceptor is not None:
            # Wait out the acceptor's poll window so the kernel fully
            # releases the listening port — a restart rebinds the same one.
            self._acceptor.join(timeout=1.0)
            self._acceptor = None


class WorkerFailure(ConnectionError):
    """Raised when collaboration fails and degradation is disabled."""


class TeamNetMaster:
    """The master node: local expert + connections to all workers.

    ``degrade_on_failure`` enables graceful degradation: if a worker dies
    or misses the gather deadline, the master drops it from the team and
    answers from the remaining experts (each expert only knows part of the
    data, so accuracy degrades — but the system keeps answering).  With
    degradation disabled, a worker failure raises :class:`WorkerFailure`.

    ``reply_timeout`` is a single **per-inference** gather deadline: all
    replies are read concurrently, so the total wait is bounded by one
    deadline no matter how many workers straggle.  Failed workers are
    retried with exponential backoff starting at ``reconnect_backoff``
    seconds and capped at ``reconnect_backoff_max``; a worker that comes
    back (same address) rejoins the team automatically.
    """

    def __init__(self, expert: Module,
                 worker_addresses: list[tuple[str, int]],
                 degrade_on_failure: bool = False,
                 reply_timeout: float | None = None,
                 reconnect_backoff: float = 0.25,
                 reconnect_backoff_max: float = 5.0,
                 connect_timeout: float = 0.25,
                 transport: Transport | None = None):
        self.expert = expert
        self.degrade_on_failure = degrade_on_failure
        self.reply_timeout = reply_timeout
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        self.connect_timeout = connect_timeout
        self._transport = transport if transport is not None else TcpTransport()
        self._peers = [
            _Peer(i, (host, port), self._transport.connect(host, port))
            for i, (host, port) in enumerate(worker_addresses, start=1)]
        # Golden-trace capture for the differential testkit: the expert
        # outputs and original team indices that fed the last selection.
        self.last_outputs: dict[int, ExpertOutput] = {}
        self.last_participants: list[int] = []

    @property
    def team_size(self) -> int:
        return 1 + len(self._peers)

    @property
    def live_team_size(self) -> int:
        return self.team_size - len(self.failed_workers)

    @property
    def failed_workers(self) -> list[int]:
        """Indices of workers currently down (they may yet rejoin)."""
        return [peer.index for peer in self._peers if not peer.alive]

    @property
    def worker_health(self) -> dict[int, WorkerHealth]:
        """Cumulative per-worker reply-latency and failure telemetry."""
        return {peer.index: peer.health for peer in self._peers}

    # ------------------------------------------------------------ recovery
    def _maybe_reconnect(self) -> None:
        """Retry down workers whose backoff window has elapsed."""
        now = time.monotonic()
        for peer in self._peers:
            if peer.alive or now < peer.retry_at:
                continue
            try:
                peer.sock = self._transport.connect(
                    *peer.address, retries=1, delay=0.0,
                    timeout=self.connect_timeout)
                peer.health.reconnects += 1
                peer.backoff_s = 0.0
                peer.retry_at = 0.0
            except (ConnectionError, OSError):
                self._schedule_retry(peer)

    def _schedule_retry(self, peer: _Peer) -> None:
        peer.backoff_s = (self.reconnect_backoff if peer.backoff_s <= 0.0
                          else min(peer.backoff_s * 2,
                                   self.reconnect_backoff_max))
        peer.retry_at = time.monotonic() + peer.backoff_s

    # ------------------------------------------------------------- failure
    def _fail(self, peer: _Peer, stats: TransportStats,
              inference: InferenceStats, timed_out: bool = False) -> None:
        """Record a worker failure: salvage its traffic counters, close its
        socket (a late reply on a reused connection would desync the frame
        stream), and arm the reconnect backoff."""
        if peer.sock is not None:
            stats.merge(peer.sock.stats)
            peer.sock.close()
            peer.sock = None
        peer.health.failures += 1
        if timed_out:
            peer.health.timeouts += 1
        inference.failures += 1
        self._schedule_retry(peer)

    # -------------------------------------------------------------- gather
    def _gather(self, sent: list[_Peer], inference: InferenceStats
                ) -> dict[int, ExpertOutput | Exception]:
        """Read every pending reply concurrently under one deadline.

        Returns ``{worker index: ExpertOutput or Exception}``.  A peer
        whose reader is still running at the deadline is force-failed and
        its socket shut down to unblock the reader thread.
        """
        deadline = (None if self.reply_timeout is None
                    else time.monotonic() + self.reply_timeout)
        results: dict[int, ExpertOutput | Exception] = {}
        lock = threading.Lock()
        timed_out: set[int] = set()

        def read(peer: _Peer) -> None:
            start = time.monotonic()
            try:
                reply = protocol.decode(
                    peer.sock.recv(timeout=self.reply_timeout))
                if reply.kind != "result":
                    raise WorkerFailure("worker failure: "
                                        f"{reply.meta.get('error', reply.kind)}")
                latency = time.monotonic() - start
                outcome: ExpertOutput | Exception = ExpertOutput(
                    probs=reply.arrays["probs"],
                    entropy=reply.arrays["entropy"])
                with lock:
                    if peer.index not in timed_out:
                        results[peer.index] = outcome
                        inference.reply_latency_s[peer.index] = latency
                        peer.health.replies += 1
                        peer.health.last_reply_latency_s = latency
                        peer.health.total_reply_latency_s += latency
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                with lock:
                    results.setdefault(peer.index, exc)

        threads = [threading.Thread(target=read, args=(peer,), daemon=True)
                   for peer in sent]
        for thread in threads:
            thread.start()
        for peer, thread in zip(sent, threads):
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(remaining)
            if thread.is_alive():
                with lock:
                    if peer.index not in results:
                        timed_out.add(peer.index)
                        results[peer.index] = TimeoutError(
                            f"worker {peer.index} missed the "
                            f"{self.reply_timeout}s gather deadline")
                if peer.index in timed_out:
                    peer.sock.close()  # wakes the blocked reader
                    thread.join(1.0)
        return results

    # --------------------------------------------------------------- infer
    def infer(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                            InferenceStats]:
        """One collaborative inference over the team.

        Returns (predictions, winning expert index, traffic stats).  The
        master's own expert is index 0; workers follow in connection
        order.  Winning indices refer to the *original* team numbering
        even after degradation.
        """
        x = np.asarray(x)
        stats = TransportStats()
        inference = InferenceStats()
        self._maybe_reconnect()
        if not self.degrade_on_failure:
            down = self.failed_workers
            if down:
                raise WorkerFailure(f"workers {down} are down and "
                                    "degradation is disabled")
        request = protocol.encode("infer", {}, {"x": x})
        # Step 2: broadcast the sensor data to every live peer.
        sent = []
        for peer in self._peers:
            if not peer.alive:
                continue
            try:
                peer.sock.send(request)
                sent.append(peer)
            except (ConnectionError, OSError) as exc:
                self._fail(peer, stats, inference)
                if not self.degrade_on_failure:
                    raise WorkerFailure(
                        f"worker {peer.index} failed: {exc}") from exc
        # Step 3: run the local expert while the workers compute.
        outputs = [expert_forward(self.expert, x)]
        indices = [0]
        # Step 4: gather (prediction, uncertainty) from every worker —
        # concurrently, under a single per-inference deadline.
        gather_start = time.monotonic()
        results = self._gather(sent, inference)
        inference.gather_s = time.monotonic() - gather_start
        first_error: tuple[_Peer, Exception] | None = None
        for peer in sent:
            outcome = results.get(peer.index)
            if isinstance(outcome, ExpertOutput):
                stats.merge(peer.sock.stats)
                peer.sock.stats.reset()
                outputs.append(outcome)
                indices.append(peer.index)
            else:
                exc = outcome if isinstance(outcome, Exception) \
                    else ConnectionError(f"worker {peer.index}: no reply")
                self._fail(peer, stats, inference,
                           timed_out=isinstance(exc, TimeoutError))
                if first_error is None:
                    first_error = (peer, exc)
        if first_error is not None and not self.degrade_on_failure:
            peer, exc = first_error
            raise WorkerFailure(f"worker {peer.index} failed: {exc}") from exc
        # Step 5: least-uncertainty selection.
        preds, winner = argmin_select(outputs)
        winner = np.asarray(indices)[winner]
        self.last_outputs = dict(zip(indices, outputs))
        self.last_participants = list(indices)
        combined = InferenceStats.from_transport(stats)
        combined.gather_s = inference.gather_s
        combined.reply_latency_s = inference.reply_latency_s
        combined.failures = inference.failures
        return preds, winner, combined

    def predict(self, x: np.ndarray) -> np.ndarray:
        preds, _, _ = self.infer(x)
        return preds

    def close(self) -> None:
        for peer in self._peers:
            if peer.sock is None:
                continue
            try:
                peer.sock.send(protocol.encode("shutdown"))
            except (ConnectionError, OSError):
                pass
            peer.sock.close()
            peer.sock = None


def deploy_local_team(experts: list[Module], degrade_on_failure: bool = False,
                      reply_timeout: float | None = None,
                      reconnect_backoff: float = 0.25,
                      reconnect_backoff_max: float = 5.0,
                      transport: Transport | None = None, host: str = "127.0.0.1"
                      ) -> tuple[TeamNetMaster, list[ExpertWorker]]:
    """Deploy expert 0 as master and the rest as localhost workers.

    ``transport`` selects the fabric (real TCP by default; the testkit
    passes a :class:`repro.testkit.SimTransport` to run the identical
    protocol in-process).  Callers must ``master.close()`` then
    ``worker.stop()`` when done.
    """
    if len(experts) < 2:
        raise ValueError("a team needs >= 2 experts")
    workers = []
    for expert in experts[1:]:
        worker = ExpertWorker(expert, host=host, transport=transport)
        worker.start()
        workers.append(worker)
    master = TeamNetMaster(experts[0], [w.address for w in workers],
                           degrade_on_failure=degrade_on_failure,
                           reply_timeout=reply_timeout,
                           reconnect_backoff=reconnect_backoff,
                           reconnect_backoff_max=reconnect_backoff_max,
                           transport=transport)
    return master, workers
