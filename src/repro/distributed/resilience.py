"""Resilience control plane for the TeamNet runtime.

The paper's latency argument (Section III, Figure 1(d)) assumes one
broadcast and one small reply per peer — a single slow or flapping edge
node erodes exactly the advantage TeamNet claims over MPI partitioning.
This module gives the master the machinery to keep answering *through*
crashes, flaps and stragglers, with a visible accuracy cost instead of a
silent one:

* :class:`SuspicionTracker` — a lightweight failure detector per peer:
  an EWMA of reply latency plus a miss counter folded into a suspicion
  score (a φ-accrual detector reduced to the two signals the gather
  actually produces).  Heartbeat ``ping``/``pong`` exchanges and gather
  outcomes both feed it.
* :class:`CircuitBreaker` — per-peer closed → open → half-open breaker
  replacing the bare reconnect-backoff clock: a flapping worker stops
  eating broadcast bytes and gather slots the moment it trips, and is
  only re-admitted after a successful probe.
* :class:`LatencyTracker` — sliding window of team reply latencies; its
  quantiles derive the *hedge delay* after which the master stops
  waiting on a suspected-slow peer and proceeds with the quorum it has.
* :class:`DegradationPolicy` — how degraded an answer may get before it
  is flagged (or refused): a minimum quorum of participating experts and
  an optional ceiling on the winning entropy.  Each expert only knows
  part of the data, so the caller must be able to see degradation.
* :class:`LeaderLease` / :class:`LeaseConfig` — the lease-based
  leadership record behind master failover: workers (and standby
  masters) remember the highest leadership epoch they have seen and when
  the leader last proved liveness; a lease older than
  ``LeaseConfig.duration_s`` means the leader is presumed dead and a hot
  standby may promote itself (:mod:`repro.distributed.failover`).
  Epochs only move forward, which is the fencing rule that keeps a
  deposed primary from answering as if it still led the team.

Everything here is runtime-agnostic state machinery (no sockets, no
threads); :mod:`repro.distributed.teamnet_runtime` wires it into the
broadcast/gather loop, and the deterministic testkit
(:mod:`repro.testkit`) exercises every transition without real sockets.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
           "CircuitBreaker", "SuspicionTracker", "LatencyTracker",
           "ResilienceConfig", "DegradationPolicy", "QuorumError",
           "PeerResilience", "LeaseConfig", "LeaderLease"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class QuorumError(RuntimeError):
    """A degradation-policy violation under ``on_violation="raise"``:
    too few experts answered, or the winning entropy breached the
    ceiling.  The answer was computable but not trustworthy enough to
    return silently."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the failure detector, breakers and hedging.

    * ``failure_threshold`` — consecutive failures before a peer's
      breaker trips from closed to open.
    * ``reset_timeout`` / ``reset_timeout_max`` — how long an open
      breaker blocks traffic before allowing a half-open probe; doubles
      per re-trip up to the cap (this replaces the old reconnect
      backoff clock).  ``0`` means "probe immediately", which the
      simulation testkit uses so rejoin needs no real waiting.
    * ``hedging`` — master-side hedged gathers on/off.
    * ``hedge_quantile`` / ``hedge_multiplier`` / ``hedge_floor_s`` —
      the hedge delay is ``max(multiplier × Q(quantile), floor)`` over
      the recent team reply latencies.  The default (3 × median) keeps
      healthy peers unhedged — their latency sits near the median, well
      under the delay — while a 10× straggler is cut off early.
    * ``hedge_min_samples`` / ``latency_window`` — hedging only arms
      once the window holds enough samples to trust the quantile.
    * ``ewma_alpha`` / ``success_decay`` / ``suspicion_threshold`` —
      failure-detector smoothing: each miss adds 1 to the suspicion
      score, each success multiplies it by ``success_decay``; a peer is
      *suspect* at ``score >= suspicion_threshold``.
    * ``heartbeat_timeout`` — per-probe reply deadline for
      :meth:`~repro.distributed.teamnet_runtime.TeamNetMaster.heartbeat`.
    * ``backoff_jitter`` / ``jitter_seed`` — seeded jitter fraction on
      every breaker's OPEN window (the reconnect/redeploy backoff
      clock).  Workers that died together — a rack power blip, a
      partition healing — would otherwise all retry in lockstep,
      hammering the recovering side at exactly the wrong moment; each
      peer jitters its windows by up to ``±backoff_jitter`` of their
      nominal length, from a per-peer RNG seeded with
      ``(jitter_seed, peer index)`` so testkit schedules stay
      reproducible.  0 (default) keeps the exact legacy windows.
    """

    failure_threshold: int = 3
    reset_timeout: float = 0.25
    reset_timeout_max: float = 5.0
    hedging: bool = True
    hedge_quantile: float = 0.5
    hedge_multiplier: float = 3.0
    hedge_floor_s: float = 0.02
    hedge_min_samples: int = 8
    latency_window: int = 128
    ewma_alpha: float = 0.2
    success_decay: float = 0.5
    suspicion_threshold: float = 2.0
    heartbeat_timeout: float = 0.25
    backoff_jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0 or self.reset_timeout_max < self.reset_timeout:
            raise ValueError("need 0 <= reset_timeout <= reset_timeout_max")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_multiplier <= 0 or self.hedge_floor_s < 0:
            raise ValueError("hedge_multiplier must be > 0 and "
                             "hedge_floor_s >= 0")
        if self.hedge_min_samples < 1 or self.latency_window < 1:
            raise ValueError("hedge_min_samples and latency_window "
                             "must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.success_decay < 1.0:
            raise ValueError("success_decay must be in [0, 1)")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")

    def breaker_rng(self, peer_index: int) -> np.random.Generator | None:
        """The seeded per-peer jitter stream for one breaker (None when
        jitter is disabled) — every rebuild of peer ``i``'s breaker must
        come back here so the stream stays tied to the slot, not to the
        object lifetime."""
        if self.backoff_jitter <= 0.0:
            return None
        return np.random.default_rng((self.jitter_seed, peer_index))


@dataclass(frozen=True)
class DegradationPolicy:
    """How degraded an answer may get before it stops being silent.

    * ``min_quorum`` — minimum number of participating experts
      (master included) required for an answer.
    * ``max_entropy`` — per-sample ceiling on the *winning* predictive
      entropy; an answer whose least-uncertain expert is still this
      uncertain is no answer at all.  ``None`` disables the check.
    * ``on_violation`` — ``"flag"`` records the violations in
      ``InferenceStats.violations`` and returns the degraded answer;
      ``"raise"`` refuses it with :class:`QuorumError`.
    """

    min_quorum: int = 1
    max_entropy: float | None = None
    on_violation: str = "flag"

    def __post_init__(self):
        if self.min_quorum < 1:
            raise ValueError("min_quorum must be >= 1 (the master always "
                             "participates)")
        if self.max_entropy is not None and self.max_entropy < 0:
            raise ValueError("max_entropy must be >= 0 or None")
        if self.on_violation not in ("flag", "raise"):
            raise ValueError("on_violation must be 'flag' or 'raise', "
                             f"got {self.on_violation!r}")

    def violations(self, participants: int,
                   max_winner_entropy: float | None,
                   min_quorum: int | None = None) -> list[str]:
        """Human-readable policy breaches for one inference (empty =
        the answer is acceptable).  ``min_quorum`` overrides the
        configured floor for this call — the brownout ladder's
        "quorum-min" rung lowers it under sustained overload without
        mutating this frozen policy."""
        found = []
        floor = self.min_quorum if min_quorum is None else min_quorum
        if participants < floor:
            found.append(f"quorum: {participants} participant(s) < "
                         f"min_quorum {floor}")
        if (self.max_entropy is not None and max_winner_entropy is not None
                and max_winner_entropy > self.max_entropy):
            found.append(f"entropy: winning entropy {max_winner_entropy:.4f} "
                         f"> ceiling {self.max_entropy:.4f}")
        return found


class CircuitBreaker:
    """Per-peer circuit breaker: closed → open → half-open.

    CLOSED admits traffic and counts consecutive failures; at
    ``failure_threshold`` it trips OPEN.  OPEN admits nothing until
    ``reset_timeout`` elapses (doubling per re-trip, capped at
    ``reset_timeout_max``), then HALF-OPEN admits a single probe: a
    success closes the breaker and resets the timeout, a failure
    re-opens it with a longer one.  ``clock`` is injectable so the
    state machine is unit-testable without sleeping.

    ``jitter``/``rng`` de-synchronize the OPEN windows: each trip's
    window is scaled by a factor drawn uniformly from ``[1 - jitter,
    1 + jitter]``, so peers that failed in the same instant (their
    breakers all tripped on one partition) spread their half-open
    probes out instead of dialing back in a synchronized storm.  The
    *nominal* window (base, doubling, cap) is tracked unjittered —
    jitter perturbs each wait, never the backoff trajectory.  Seed the
    RNG per peer (``ResilienceConfig.breaker_rng``) and the whole
    storm stays deterministic for the testkit.
    """

    __slots__ = ("failure_threshold", "reset_timeout", "reset_timeout_max",
                 "jitter", "_rng", "_clock", "_state",
                 "_consecutive_failures", "_opened_at", "_timeout",
                 "_window", "trips")

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 0.25,
                 reset_timeout_max: float = 5.0, clock=time.monotonic,
                 jitter: float = 0.0, rng=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.reset_timeout_max = reset_timeout_max
        self.jitter = jitter
        self._rng = rng if rng is not None else (
            np.random.default_rng(0) if jitter > 0.0 else None)
        self._clock = clock
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._timeout = 0.0
        self._window = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state; an elapsed OPEN window promotes to HALF-OPEN."""
        if (self._state == BREAKER_OPEN
                and self._clock() >= self._opened_at + self._window):
            self._state = BREAKER_HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    @property
    def open_timeout_s(self) -> float:
        """The current OPEN window length (grows per re-trip; includes
        this trip's jitter)."""
        return self._window

    def allow(self) -> bool:
        """May traffic (a broadcast, a reconnect, a probe) flow now?"""
        return self.state != BREAKER_OPEN

    def record_success(self) -> None:
        """A round-trip succeeded: close the breaker and reset."""
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._timeout = 0.0
        self._window = 0.0

    def record_failure(self) -> None:
        """A round-trip failed; trips the breaker at the threshold, and
        a half-open probe failure re-opens immediately."""
        self._consecutive_failures += 1
        if (self._state == BREAKER_HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            self._timeout = (self.reset_timeout if self._timeout <= 0.0
                             else min(self._timeout * 2,
                                      self.reset_timeout_max))
            self._window = self._timeout
            if self._rng is not None and self.jitter > 0.0:
                # Scale this wait only; the nominal doubling trajectory
                # above is what the next trip builds on.
                self._window *= 1.0 + self.jitter * float(
                    self._rng.uniform(-1.0, 1.0))
            self._opened_at = self._clock()
            self._state = BREAKER_OPEN
            self.trips += 1


class SuspicionTracker:
    """Failure-detector state for one peer.

    Two signals, both produced by the gather/heartbeat loop anyway: the
    EWMA of observed reply latency (how slow the peer has been) and a
    decaying miss count (how flaky it has been).  Each miss adds 1 to
    the score; each success multiplies it by ``decay``; ``suspect``
    trips at ``threshold``.  The EWMA is only updated from real reply
    latencies — heartbeat pongs carry no expert compute, so they decay
    the score without polluting the latency estimate.
    """

    __slots__ = ("alpha", "decay", "threshold", "score", "ewma_latency_s",
                 "misses", "observations")

    def __init__(self, alpha: float = 0.2, decay: float = 0.5,
                 threshold: float = 2.0):
        self.alpha = alpha
        self.decay = decay
        self.threshold = threshold
        self.score = 0.0
        self.ewma_latency_s: float | None = None
        self.misses = 0
        self.observations = 0

    def observe(self, latency_s: float | None = None) -> None:
        """Record a successful round-trip (optionally with its reply
        latency); successes decay the suspicion score."""
        self.score *= self.decay
        self.observations += 1
        if latency_s is not None:
            latency_s = float(latency_s)
            if self.ewma_latency_s is None:
                self.ewma_latency_s = latency_s
            else:
                self.ewma_latency_s += self.alpha * (latency_s
                                                     - self.ewma_latency_s)

    def miss(self) -> None:
        """Record a miss (timeout, connection failure, hedge cutoff)."""
        self.misses += 1
        self.score += 1.0

    @property
    def suspect(self) -> bool:
        return self.score >= self.threshold


class LatencyTracker:
    """Sliding window of reply latencies with quantile queries.

    The master feeds every successful reply latency (all peers pooled)
    into one tracker; its quantile derives the hedge delay, so the
    definition of "slow" tracks the team's current conditions instead of
    a hand-tuned constant.
    """

    def __init__(self, window: int = 128):
        if window < 1:
            raise ValueError("window must be >= 1")
        self._samples: deque[float] = deque(maxlen=window)

    def add(self, latency_s: float) -> None:
        self._samples.append(float(latency_s))

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the window (requires >= 1 sample)."""
        if not self._samples:
            raise ValueError("no latency samples recorded yet")
        return float(np.quantile(np.fromiter(self._samples, dtype=float), q))


@dataclass(frozen=True)
class LeaseConfig:
    """Timing contract for lease-based leadership.

    * ``duration_s`` — how long one renewal (a leader heartbeat, attach,
      or broadcast) keeps the lease alive.  A worker whose lease is
      older than this reports the leader as presumed dead, and a standby
      observing that on every reachable worker may start an election.
    * ``promotion_multiple`` — the recovery-time budget, as a multiple
      of ``duration_s``: detection → election → re-attach → first served
      answer must fit inside ``duration_s * promotion_multiple``.  The
      failover benchmark gates on it.
    """

    duration_s: float = 0.5
    promotion_multiple: float = 4.0

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.promotion_multiple < 1:
            raise ValueError("promotion_multiple must be >= 1")

    @property
    def recovery_budget_s(self) -> float:
        """The gated end-to-end recovery time."""
        return self.duration_s * self.promotion_multiple


class LeaderLease:
    """One node's record of the current leader and its lease.

    Pure clock-injected state machine (no threads, no sockets): the
    runtime calls :meth:`renew` when a master proves liveness with an
    epoch, and :meth:`age`/:meth:`expired` answer "how stale is the
    leadership claim?".  The **fencing rule** lives here: a renewal with
    an epoch lower than the highest seen is refused — the caller turns
    that refusal into a ``stale_epoch`` error reply, which is what
    deposes a zombie primary.  Epoch 0 means "no leader ever seen".
    """

    __slots__ = ("leader", "epoch", "renewed_at")

    def __init__(self, leader: str | None = None, epoch: int = 0):
        self.leader = leader
        self.epoch = int(epoch)
        self.renewed_at: float | None = None

    def renew(self, leader: str | None, epoch: int, now: float) -> bool:
        """Record a liveness proof from ``leader`` at ``epoch``.

        Returns False (and changes nothing) when ``epoch`` is below the
        highest epoch seen — the stale claim must be fenced off.  An
        equal epoch refreshes the timestamp (the same leader renewing);
        a higher one installs the new leader.
        """
        epoch = int(epoch)
        if epoch < self.epoch:
            return False
        if epoch > self.epoch:
            self.epoch = epoch
            self.leader = leader
        elif leader is not None:
            self.leader = leader
        self.renewed_at = float(now)
        return True

    def age(self, now: float) -> float | None:
        """Seconds since the last renewal (None if never renewed)."""
        if self.renewed_at is None:
            return None
        return max(0.0, float(now) - self.renewed_at)

    def expired(self, now: float, duration_s: float) -> bool:
        """Is the leadership claim stale under ``duration_s``?  A lease
        never renewed counts as expired (no leader is a dead leader)."""
        age = self.age(now)
        return age is None or age > duration_s

    def __repr__(self) -> str:
        return (f"LeaderLease(leader={self.leader!r}, epoch={self.epoch}, "
                f"renewed_at={self.renewed_at})")


@dataclass(frozen=True)
class PeerResilience:
    """Read-only snapshot of one peer's control-plane state, as exposed
    by ``TeamNetMaster.resilience_snapshot()`` and rendered by
    :func:`repro.edge.monitor.resilience_table`."""

    index: int
    address: tuple[str, int]
    alive: bool
    breaker_state: str
    consecutive_failures: int
    breaker_trips: int
    suspicion_score: float
    suspect: bool
    ewma_reply_latency_s: float | None
    replies: int
    failures: int
    timeouts: int
    hedges: int
    reconnects: int
    redeployments: int = 0
    # Data-plane integrity (repro.distributed.integrity); all defaulted
    # so snapshots from masters without an integrity layer still build.
    invalid_replies: int = 0
    quarantined: bool = False
    quarantines: int = 0
    quarantine_reason: str | None = None
    canary_failures: int = 0
    readmissions: int = 0
    # Overload control (repro.distributed.overload): deadline-shed work
    # this peer reported instead of computing.  Defaulted for snapshots
    # from masters predating the overload layer.
    expired_replies: int = 0
    expired_segments: int = 0
