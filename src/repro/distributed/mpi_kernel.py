"""MPI-Kernel: convolution-kernel-parallel CNN inference (Section VI-A).

"Alternatively, we can distribute convolutional kernels and their
associated computation onto multiple edge devices (MPI-Kernel)."

Every Conv2d's output channels (kernels) are split across the K ranks; each
rank convolves the *full* input feature map with its kernel slice, then an
``allgather`` reassembles the full feature map on every rank.  Because the
exchanged payloads are whole feature maps, MPI-Kernel moves far more bytes
per layer than MPI-Matrix — the reason Table II shows it as the slowest
approach, degrading further with more nodes.

Cheap layers (batch norm, activations, pooling, the final FC) run
redundantly on every rank.  The distributed forward is numerically
identical to the single-node eval forward (asserted in tests).
"""

from __future__ import annotations

import numpy as np

from ..comm.mpi import Communicator
from ..nn import Conv2d, ShakeShakeCNN, Tensor, no_grad
from ..nn import functional as F
from ..nn.layers import Identity
from ..nn.models import ShakeShakeBlock, _Branch, _Shortcut

__all__ = ["kernel_split_conv", "mpi_kernel_forward", "MpiKernelRunner",
           "count_conv_layers"]


def kernel_split_conv(conv: Conv2d, x: np.ndarray,
                      comm: Communicator) -> np.ndarray:
    """Convolve with this rank's kernel slice, then allgather channels."""
    w_slices = np.array_split(conv.weight.data, comm.size, axis=0)
    b_slices = (np.array_split(conv.bias.data, comm.size)
                if conv.bias is not None else [None] * comm.size)
    w = Tensor(w_slices[comm.rank])
    b = None if b_slices[comm.rank] is None else Tensor(b_slices[comm.rank])
    if w.shape[0] > 0:
        partial = F.conv2d(Tensor(x), w, b, stride=conv.stride,
                           padding=conv.padding).data
    else:
        # More ranks than kernels: this rank contributes an empty slice.
        n, _, hh, ww = x.shape
        out_h = (hh + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
        out_w = (ww + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
        partial = np.zeros((n, 0, out_h, out_w))
    parts = comm.allgather(partial)
    return np.concatenate(parts, axis=1)


def _bn_eval(bn, x: np.ndarray) -> np.ndarray:
    """Apply batch norm with running statistics (eval semantics)."""
    shape = (1, -1) + (1,) * (x.ndim - 2)
    mean = bn.running_mean.reshape(shape)
    var = bn.running_var.reshape(shape)
    scale = bn.weight.data.reshape(shape)
    shift = bn.bias.data.reshape(shape)
    return (x - mean) / np.sqrt(var + bn.eps) * scale + shift


def _branch_forward(branch: _Branch, x: np.ndarray,
                    comm: Communicator) -> np.ndarray:
    out = kernel_split_conv(branch.conv1, x, comm)
    out = np.maximum(_bn_eval(branch.bn1, out), 0.0)
    out = kernel_split_conv(branch.conv2, out, comm)
    return _bn_eval(branch.bn2, out)


def _shortcut_forward(shortcut, x: np.ndarray,
                      comm: Communicator) -> np.ndarray:
    if isinstance(shortcut, Identity):
        return x
    out = kernel_split_conv(shortcut.conv, x, comm)
    return _bn_eval(shortcut.bn, out)


def mpi_kernel_forward(model: ShakeShakeCNN, x: np.ndarray,
                       comm: Communicator) -> np.ndarray:
    """Kernel-split eval forward of a Shake-Shake CNN over ``comm``."""
    x = np.asarray(x)
    with no_grad():
        h = kernel_split_conv(model.stem, x, comm)
        h = np.maximum(_bn_eval(model.stem_bn, h), 0.0)
        for block in model.stages:
            b1 = _branch_forward(block.branch1, h, comm)
            b2 = _branch_forward(block.branch2, h, comm)
            mixed = 0.5 * b1 + 0.5 * b2  # eval-mode shake-shake expectation
            h = np.maximum(mixed + _shortcut_forward(block.shortcut, h, comm),
                           0.0)
        pooled = h.mean(axis=(2, 3))
        logits = pooled @ model.fc.weight.data.T
        if model.fc.bias is not None:
            logits = logits + model.fc.bias.data
    return logits


def count_conv_layers(model: ShakeShakeCNN) -> int:
    """Analytic collective count: one allgather per Conv2d."""
    return sum(1 for module in model.modules() if isinstance(module, Conv2d))


class MpiKernelRunner:
    """Convenience wrapper: distributed predictions + collective counts."""

    def __init__(self, model: ShakeShakeCNN, comm: Communicator):
        self.model = model
        self.comm = comm

    def predict(self, x: np.ndarray) -> np.ndarray:
        return mpi_kernel_forward(self.model, x, self.comm).argmax(axis=1)

    def num_collectives_per_inference(self) -> int:
        return count_conv_layers(self.model)
