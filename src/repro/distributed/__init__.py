"""``repro.distributed`` — distributed inference runtimes.

The TeamNet socket runtime (master/worker, Figure 1(d)) and every baseline
runtime the paper evaluates: MPI-Matrix, MPI-Kernel, MPI-Branch, SG-MoE-G
(RPC) and SG-MoE-M (MPI).  All runtimes are functionally exact — they
reproduce the single-node forward bit-for-bit — and meter their traffic so
the edge simulator can replay it against device/WiFi profiles.
"""

from .failover import (FailoverServer, FailoverStats, LeaseView,
                       MasterFailover, StandbyMaster, TransportRing,
                       WorkerView, REDRIVE_ERRORS)
from .integrity import (CanaryProber, CanarySet, IntegrityConfig,
                        IntegrityViolation, QuarantineManager,
                        QuarantineRecord, ReplyValidator, make_canary_set,
                        structural_reason)
from .moe_runtime import (MoEGrpcMaster, MoEMpiRunner, moe_mpi_forward,
                          serve_expert)
from .overload import (AdmissionController, BrownoutController,
                       DeadlineExpired, OverloadConfig, RetryBudget,
                       remaining_budget, BROWNOUT_LEVELS)
from .resilience import (CircuitBreaker, DegradationPolicy, LatencyTracker,
                         LeaderLease, LeaseConfig, PeerResilience,
                         QuorumError, ResilienceConfig, SuspicionTracker)
from .mpi_branch import MpiBranchRunner, count_blocks, mpi_branch_forward
from .mpi_kernel import (MpiKernelRunner, count_conv_layers,
                         kernel_split_conv, mpi_kernel_forward)
from .mpi_matrix import (MpiMatrixRunner, mpi_matrix_forward,
                         split_linear_weights)
from .serving import (RequestAbandoned, ServeFuture, ServerClosed,
                      ServerOverloaded, ServerStats, TeamNetServer)
from .teamnet_runtime import (ExpertWorker, InferenceStats, LeadershipLost,
                              TeamNetMaster, WorkerFailure, WorkerHealth,
                              deploy_local_team)

__all__ = [
    "TeamNetMaster", "ExpertWorker", "deploy_local_team", "InferenceStats",
    "WorkerFailure", "WorkerHealth", "LeadershipLost",
    "TeamNetServer", "ServeFuture", "ServerStats", "ServerClosed",
    "ServerOverloaded", "RequestAbandoned",
    "MasterFailover", "REDRIVE_ERRORS", "FailoverServer", "FailoverStats",
    "StandbyMaster", "TransportRing", "LeaseView", "WorkerView",
    "CircuitBreaker", "SuspicionTracker", "LatencyTracker",
    "ResilienceConfig", "DegradationPolicy", "QuorumError", "PeerResilience",
    "LeaseConfig", "LeaderLease",
    "OverloadConfig", "AdmissionController", "BrownoutController",
    "RetryBudget", "DeadlineExpired", "remaining_budget", "BROWNOUT_LEVELS",
    "IntegrityConfig", "IntegrityViolation", "ReplyValidator",
    "CanarySet", "make_canary_set", "CanaryProber",
    "QuarantineManager", "QuarantineRecord", "structural_reason",
    "mpi_matrix_forward", "split_linear_weights", "MpiMatrixRunner",
    "mpi_kernel_forward", "kernel_split_conv", "count_conv_layers",
    "MpiKernelRunner", "mpi_branch_forward", "count_blocks",
    "MpiBranchRunner", "serve_expert", "MoEGrpcMaster", "moe_mpi_forward",
    "MoEMpiRunner",
]
