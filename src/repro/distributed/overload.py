"""Overload control for the TeamNet serving path.

The runtime survives crashes, corruption and a dying master — but until
this module it had no defense against *load*.  Admission was one static
queue bound, workers happily computed replies whose clients had already
timed out, and every retry mechanism (reconnects, redeploys, hedges,
failover re-drives) amplified traffic exactly when the cluster could
least afford it — the classic recipe for metastable failure, where a
transient burst leaves the system grinding through a backlog of requests
nobody is waiting for anymore.

Four cooperating mechanisms, all plain clock-injected state machines
(no threads, no sockets — the runtime wires them in):

* **Deadline budgets** — every request can carry a relative deadline
  budget; it travels on the broadcast meta (``deadline_budget_s`` /
  ``sent_at``) so an :class:`~repro.distributed.teamnet_runtime
  .ExpertWorker` can shed expired work *before* running the expert and
  answer with a typed ``EXPIRED`` reply instead of a wasted forward.
  :func:`remaining_budget` is the one shared definition of "how much is
  left" (transit time is charged only when the clocks are comparable —
  elapsed time is clamped at zero so clock skew can never *extend* a
  budget).
* :class:`AdmissionController` — an AIMD concurrency limiter replacing
  the static queue bound: outstanding work is capped by a limit that
  grows additively while observed serve latency meets the target and
  halves when it doesn't, so admission sheds early (cheap) instead of
  the gather shedding late (expensive).  Its ``pressure`` signal — an
  EWMA of "recent samples over target" in [0, 1] — is what the brownout
  ladder and the LIFO-under-overload queue ordering key off.
* :class:`RetryBudget` — a token bucket shared by every retry-shaped
  expense (reconnect dials, redeploy pushes, hedged gathers, failover
  re-drives).  When the bucket is dry, retries fail fast rather than
  multiplying load on a struggling cluster; it refills with time, so a
  genuinely recovered cluster gets its retries back.
* :class:`BrownoutController` — sustained pressure walks a degradation
  ladder one deliberate step at a time: first hedging turns off (stop
  spending speculative work), then the quorum floor drops (answer from
  fewer experts), then batch linger goes to zero (stop waiting for
  company).  Recovery retraces the same steps in reverse, and every
  transition is recorded for ``resilience_snapshot()`` /
  ``edge.resilience_table`` visibility.

:class:`DeadlineExpired` is the typed rejection a shed request's future
fails with — callers can tell "the system was too slow for your
deadline" from a real failure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["OverloadConfig", "AdmissionController", "RetryBudget",
           "BrownoutController", "DeadlineExpired", "remaining_budget",
           "BROWNOUT_LEVELS"]

#: The brownout ladder, mildest first.  Escalation walks right one rung
#: at a time under sustained pressure; recovery walks back left.
BROWNOUT_LEVELS = ("normal", "hedge-off", "quorum-min", "linger-off")


class DeadlineExpired(RuntimeError):
    """The request's deadline budget ran out before an answer could be
    produced.  Raised at submit (budget already spent), at dispatch (it
    expired while queued), or at resolution (the answer landed too
    late).  This is load shedding, not a fault — breakers and failure
    detectors must never trip on it."""


def remaining_budget(budget_s: float | None, sent_at: float | None,
                     now: float) -> float | None:
    """How much of a relative deadline budget is left at ``now``.

    ``sent_at`` is the sender's clock when the budget was stamped; the
    elapsed charge is clamped at zero so a receiver whose clock runs
    behind the sender's can only *shorten* a budget, never stretch it.
    ``None`` budget means "no deadline" and passes through.
    """
    if budget_s is None:
        return None
    if sent_at is None:
        return float(budget_s)
    return float(budget_s) - max(0.0, now - float(sent_at))


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs for admission, pressure, brownout and retry budgets.

    * ``target_latency_s`` — the serve-latency target the AIMD limiter
      steers toward: samples at or under it grow the limit additively,
      samples over it halve the limit.
    * ``min_limit`` / ``max_limit`` / ``initial_limit`` — bounds and
      starting point of the concurrency limit (outstanding requests:
      queued + in flight).
    * ``additive_increase`` / ``multiplicative_decrease`` — the AIMD
      step sizes.
    * ``pressure_alpha`` — EWMA smoothing of the binary over-target
      signal into the ``pressure`` reading in [0, 1].
    * ``lifo_pressure`` — above this pressure the serving queue pops
      newest-first: under overload a fresh request with a live deadline
      beats a stale one that will expire anyway.
    * ``brownout_enter`` / ``brownout_exit`` / ``brownout_dwell`` —
      ladder hysteresis: ``dwell`` consecutive pressure samples above
      ``enter`` escalate one level, the same count below ``exit``
      recovers one level.  ``enter > exit`` keeps the ladder from
      flapping at the boundary.
    * ``retry_capacity`` / ``retry_refill_rate`` — the shared token
      bucket for retries: burst allowance and tokens-per-second refill.
    """

    target_latency_s: float = 0.05
    min_limit: int = 1
    max_limit: int = 256
    initial_limit: int = 16
    additive_increase: float = 1.0
    multiplicative_decrease: float = 0.5
    pressure_alpha: float = 0.2
    lifo_pressure: float = 0.5
    brownout_enter: float = 0.7
    brownout_exit: float = 0.3
    brownout_dwell: int = 3
    retry_capacity: float = 8.0
    retry_refill_rate: float = 0.5

    def __post_init__(self):
        if self.target_latency_s <= 0:
            raise ValueError("target_latency_s must be > 0")
        if not 1 <= self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("need 1 <= min_limit <= initial_limit "
                             "<= max_limit")
        if self.additive_increase <= 0:
            raise ValueError("additive_increase must be > 0")
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise ValueError("multiplicative_decrease must be in (0, 1)")
        if not 0.0 < self.pressure_alpha <= 1.0:
            raise ValueError("pressure_alpha must be in (0, 1]")
        if not 0.0 <= self.lifo_pressure <= 1.0:
            raise ValueError("lifo_pressure must be in [0, 1]")
        if not 0.0 <= self.brownout_exit < self.brownout_enter <= 1.0:
            raise ValueError("need 0 <= brownout_exit < brownout_enter <= 1")
        if self.brownout_dwell < 1:
            raise ValueError("brownout_dwell must be >= 1")
        if self.retry_capacity < 0 or self.retry_refill_rate < 0:
            raise ValueError("retry_capacity and retry_refill_rate "
                             "must be >= 0")


class AdmissionController:
    """AIMD concurrency limiter over outstanding (queued + in-flight)
    requests.

    ``try_acquire`` admits while ``outstanding < limit`` and counts a
    shed otherwise; ``release`` returns the slot when the request
    settles (answered, failed, or shed later in the pipeline).  The
    limit adapts from observed serve latency (enqueue to answer, which
    the gather dominates when the queue is short): each sample at or
    under ``target_latency_s`` adds ``additive_increase``, each sample
    over it multiplies by ``multiplicative_decrease`` — so a backed-up
    pipeline shrinks its own admission window until latency meets the
    target again.

    ``pressure`` is the EWMA (``pressure_alpha``) of the binary
    over-target signal: 0 means recent samples all met the target, 1
    means none did.  Thread-safe; ``clock`` is injectable but only used
    for snapshots (the AIMD math is sample-driven, not time-driven).
    """

    def __init__(self, config: OverloadConfig | None = None,
                 clock=time.monotonic):
        self.config = config if config is not None else OverloadConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(self.config.initial_limit)
        self._outstanding = 0
        self._pressure = 0.0
        self.admitted = 0
        self.shed = 0
        self.samples = 0
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """The current admission limit (outstanding requests)."""
        with self._lock:
            return int(self._limit)

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    @property
    def pressure(self) -> float:
        """Smoothed overload signal in [0, 1] (see class docstring)."""
        with self._lock:
            return self._pressure

    def try_acquire(self) -> bool:
        """Admit one request if the limit allows; False = shed it."""
        with self._lock:
            if self._outstanding >= int(self._limit):
                self.shed += 1
                return False
            self._outstanding += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        """Return one admitted request's slot (idempotence is the
        caller's job — settle-once futures give it for free)."""
        with self._lock:
            if self._outstanding > 0:
                self._outstanding -= 1

    def on_sample(self, latency_s: float) -> None:
        """Feed one observed serve latency into the AIMD update."""
        cfg = self.config
        over = float(latency_s) > cfg.target_latency_s
        with self._lock:
            self.samples += 1
            if over:
                self._limit = max(float(cfg.min_limit),
                                  self._limit * cfg.multiplicative_decrease)
                self.decreases += 1
            else:
                self._limit = min(float(cfg.max_limit),
                                  self._limit + cfg.additive_increase)
                self.increases += 1
            self._pressure += cfg.pressure_alpha * (float(over)
                                                    - self._pressure)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": int(self._limit),
                "outstanding": self._outstanding,
                "pressure": self._pressure,
                "admitted": self.admitted,
                "shed": self.shed,
                "samples": self.samples,
                "increases": self.increases,
                "decreases": self.decreases,
            }


class RetryBudget:
    """A token bucket shared by every retry-shaped expense.

    Reconnect dials, redeploy pushes, hedged gathers and failover
    re-drives all draw from one bucket of ``capacity`` tokens refilled
    at ``refill_rate`` tokens/second — so the *total* retry pressure a
    master can put on a struggling cluster is bounded, no matter how
    many mechanisms want to retry at once.  ``try_spend`` either takes
    the tokens or refuses (the caller fails fast); ``available()`` peeks
    without spending (hedging uses it to pause speculation while the
    bucket is dry).  Thread-safe, clock-injected.
    """

    def __init__(self, capacity: float = 8.0, refill_rate: float = 0.5,
                 clock=time.monotonic):
        if capacity < 0 or refill_rate < 0:
            raise ValueError("capacity and refill_rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._refilled_at = float(clock())
        self.spent = 0
        self.denied = 0

    @classmethod
    def from_config(cls, config: OverloadConfig,
                    clock=time.monotonic) -> "RetryBudget":
        return cls(capacity=config.retry_capacity,
                   refill_rate=config.retry_refill_rate, clock=clock)

    def _refill(self, now: float) -> None:
        """Caller holds ``_lock``."""
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.refill_rate)

    def try_spend(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` from the bucket, or refuse without taking."""
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        with self._lock:
            self._refill(self._clock())
            if self._tokens < tokens:
                self.denied += 1
                return False
            self._tokens -= tokens
            self.spent += 1
            return True

    def available(self) -> float:
        """Current token count (refreshes the refill, spends nothing)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def snapshot(self) -> dict:
        with self._lock:
            self._refill(self._clock())
            return {
                "tokens": self._tokens,
                "capacity": self.capacity,
                "refill_rate": self.refill_rate,
                "spent": self.spent,
                "denied": self.denied,
            }


class BrownoutController:
    """Walks the brownout ladder from the limiter's pressure signal.

    Feed every pressure sample through :meth:`observe`.  ``dwell``
    consecutive samples above ``brownout_enter`` escalate one rung of
    :data:`BROWNOUT_LEVELS`; the same count below ``brownout_exit``
    recovers one rung.  One rung per dwell window in either direction —
    degradation is deliberate and staged, and recovery retraces the
    exact same steps in reverse, so the system never jumps from
    "healthy" to "minimum quorum" (or back) on one noisy sample.

    The controller only decides *levels*; applying them (turning
    hedging off, dropping the quorum floor, zeroing the batch linger)
    is the serving layer's job, which keeps this a pure state machine.
    """

    def __init__(self, config: OverloadConfig | None = None,
                 clock=time.monotonic):
        self.config = config if config is not None else OverloadConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._above = 0
        self._below = 0
        self.escalations = 0
        self.recoveries = 0
        #: every transition as ``(time, from_level, to_level, pressure)``
        self.transitions: list[tuple[float, int, int, float]] = []

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def level_name(self) -> str:
        return BROWNOUT_LEVELS[self.level]

    def observe(self, pressure: float) -> tuple[int, int] | None:
        """Feed one pressure sample; returns ``(from, to)`` when this
        sample caused a level transition, else None."""
        cfg = self.config
        with self._lock:
            if pressure > cfg.brownout_enter:
                self._above += 1
                self._below = 0
            elif pressure < cfg.brownout_exit:
                self._below += 1
                self._above = 0
            else:
                self._above = 0
                self._below = 0
            transition = None
            if (self._above >= cfg.brownout_dwell
                    and self._level < len(BROWNOUT_LEVELS) - 1):
                transition = (self._level, self._level + 1)
                self._level += 1
                self._above = 0
                self.escalations += 1
            elif self._below >= cfg.brownout_dwell and self._level > 0:
                transition = (self._level, self._level - 1)
                self._level -= 1
                self._below = 0
                self.recoveries += 1
            if transition is not None:
                self.transitions.append((float(self._clock()),
                                         transition[0], transition[1],
                                         float(pressure)))
            return transition

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self._level,
                "level_name": BROWNOUT_LEVELS[self._level],
                "escalations": self.escalations,
                "recoveries": self.recoveries,
                "transitions": [list(t) for t in self.transitions],
            }
