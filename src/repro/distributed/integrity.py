"""Data-plane integrity: validate, fence, probe, quarantine.

The crash-fault machinery (breakers, suspicion, failover) assumes a
broken worker goes *quiet*.  The arg-min predictive-entropy gate has the
opposite failure mode: a worker with silently corrupted state — flipped
weight bits, a stale model after a redeploy, a wire payload tampered in
transit — can emit a spuriously confident low-entropy distribution and
therefore **always win the gate**.  This module is the master-side
defense, four layers deep:

* :class:`ReplyValidator` — every gather reply is checked *before* the
  gate sees it: finite values, normalized simplex rows, shape/dtype
  structure, and **entropy consistency** (recompute the entropy from the
  returned distribution; disagreement with the claimed value means the
  payload was not produced by one honest forward pass).
* **Model-version fencing** — workers stamp each reply with a SHA-256
  weights fingerprint (:func:`repro.nn.serialize.weights_fingerprint`)
  taken when the expert was installed; the master rejects replies whose
  stamp disagrees with the roster's expected version.  This catches the
  redeploy-then-stale-worker-reconnect race: a pre-redeploy worker
  rejoining with its old expert answers with the old fingerprint and is
  fenced instead of silently rejoining the team.
* :class:`CanaryProber` — periodic known-answer probes from a small
  canary input set whose golden outputs were recorded at deploy time
  (and persisted alongside checkpoints).  Canaries catch what validation
  cannot: corruption that still yields a well-formed, self-consistent
  distribution (the stamp is cached at install time, so live bit-flips
  keep a *matching* version tag — only a wrong answer betrays them).
* :class:`QuarantineManager` — a validation failure or canary mismatch
  quarantines the slot: excluded from broadcasts (and thus from the gate
  and quorum credit), still canary-probed, auto-redeployed from the
  checkpoint store, and readmitted only after ``readmit_passes``
  *consecutive* canary passes.

Everything here is runtime-agnostic (no sockets, no threads beyond a
lock); :mod:`repro.distributed.teamnet_runtime` wires it into the
gather/heartbeat loop, and the seeded corruption soak
(:mod:`repro.testkit.integrity`) proves the protected team converges
back to byte-identical answers while an unprotected one keeps serving
wrong ones.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.entropy import entropy_from_probs
from ..core.inference import ExpertOutput, expert_forward

__all__ = ["IntegrityConfig", "IntegrityViolation", "ReplyValidator",
           "CanarySet", "make_canary_set", "CanaryProber",
           "QuarantineManager", "QuarantineRecord", "structural_reason"]


class IntegrityViolation(ConnectionError):
    """A reply failed data-plane validation (malformed payload, broken
    simplex, inconsistent entropy, or a model-version mismatch).

    A ``ConnectionError`` subclass so the gather's existing failure
    bookkeeping applies — the reply is booked as a failure and excluded
    from the gate — but distinguishable from transport faults, because
    the *connection* is fine: it is the data that lies.  The integrity
    layer additionally quarantines the slot instead of merely closing
    the socket (reconnecting to a corrupted expert fixes nothing)."""


def structural_reason(probs, entropy, rows: int) -> str | None:
    """Cheap always-on shape/dtype checks for one RESULT payload.

    Returns a human-readable reason when the payload cannot possibly be
    ``rows`` probability rows plus their entropies, else None.  This
    runs even without an :class:`IntegrityConfig`: a garbage payload
    must surface as a typed failure, never as a raw numpy error from
    inside the gate's ``np.stack``.
    """
    if probs is None or entropy is None:
        return "reply is missing its probs/entropy arrays"
    if probs.ndim != 2:
        return f"probs must be 2-D (rows, classes), got shape {probs.shape}"
    if entropy.ndim != 1:
        return f"entropy must be 1-D, got shape {entropy.shape}"
    if probs.dtype.kind != "f" or entropy.dtype.kind != "f":
        return (f"probs/entropy must be float arrays, got "
                f"{probs.dtype}/{entropy.dtype}")
    if probs.shape[0] != rows or entropy.shape[0] != rows:
        return (f"expected {rows} rows, got probs {probs.shape[0]} / "
                f"entropy {entropy.shape[0]}")
    if probs.shape[1] < 1:
        return "probs has zero classes"
    return None


@dataclass(frozen=True)
class IntegrityConfig:
    """Tuning knobs for the data-plane integrity layer.

    * ``simplex_atol`` — tolerance on each probability row's sum vs 1
      (and on negative entries); wire floats are exact, so this only
      needs to absorb the worker's own softmax arithmetic.
    * ``entropy_atol`` / ``entropy_rtol`` — tolerance when comparing the
      claimed entropy to one recomputed from the returned distribution.
    * ``canary_atol`` — absolute tolerance for known-answer probes; the
      golden outputs were computed by the same engine on the same
      weights, so this is essentially a bit-exactness check.
    * ``probe_every`` — canary probes piggyback on every Nth heartbeat
      (1 = every heartbeat).  Counter-based, not clock-based, so probe
      cadence is deterministic on the testkit's virtual clock.
    * ``readmit_passes`` — consecutive canary passes required before a
      quarantined slot rejoins the gate.
    * ``auto_redeploy`` — push the stored expert archive back to a
      quarantined worker automatically (needs a checkpoint store).
    * ``pin_first_version`` — with no expected version on record for a
      slot, pin the first stamped version seen on a *valid* reply
      (trust-on-first-use); later mismatches are then fenced.
    """

    simplex_atol: float = 1e-5
    entropy_atol: float = 1e-5
    entropy_rtol: float = 1e-5
    canary_atol: float = 1e-6
    probe_every: int = 1
    readmit_passes: int = 2
    auto_redeploy: bool = True
    pin_first_version: bool = True

    def __post_init__(self):
        for name in ("simplex_atol", "entropy_atol", "entropy_rtol",
                     "canary_atol"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.probe_every < 1:
            raise ValueError("probe_every must be >= 1")
        if self.readmit_passes < 1:
            raise ValueError("readmit_passes must be >= 1")


class ReplyValidator:
    """Validate one gather reply before the gate may read it.

    ``validate`` returns a reason string (the reply is invalid) or None
    (trustworthy).  Checks are ordered cheap-to-expensive and stop at
    the first failure; the version fence runs first because a stale
    expert's output can be perfectly well-formed.
    """

    def __init__(self, config: IntegrityConfig | None = None):
        self.config = config if config is not None else IntegrityConfig()

    def validate(self, probs: np.ndarray, entropy: np.ndarray, rows: int,
                 claimed_version: str | None = None,
                 expected_version: str | None = None) -> str | None:
        reason = structural_reason(probs, entropy, rows)
        if reason is not None:
            return reason
        cfg = self.config
        if expected_version is not None and claimed_version != expected_version:
            return (f"model version mismatch: reply stamped "
                    f"{_short(claimed_version)}, roster expects "
                    f"{_short(expected_version)}")
        if not np.isfinite(probs).all():
            return "probs contain NaN/inf"
        if not np.isfinite(entropy).all():
            return "entropy contains NaN/inf"
        if (probs < -cfg.simplex_atol).any():
            return f"probs contain negative entries (min {probs.min():.3e})"
        sums = probs.sum(axis=-1)
        dev = float(np.abs(sums - 1.0).max())
        if dev > cfg.simplex_atol:
            return (f"probability rows are not normalized "
                    f"(max |sum - 1| = {dev:.3e})")
        recomputed = entropy_from_probs(np.clip(probs, 0.0, None))
        if not np.allclose(entropy, recomputed, rtol=cfg.entropy_rtol,
                           atol=cfg.entropy_atol):
            gap = float(np.abs(entropy - recomputed).max())
            return (f"claimed entropy inconsistent with the returned "
                    f"distribution (max gap {gap:.3e})")
        return None


def _short(version: str | None) -> str:
    if version is None:
        return "<unstamped>"
    return version[:12]


@dataclass
class CanarySet:
    """A small known-answer input batch plus per-expert golden outputs.

    ``golden`` maps team index (0 = master's expert) to the
    :class:`~repro.core.inference.ExpertOutput` recorded at deploy time.
    The whole set round-trips through flat arrays (``to_arrays`` /
    ``from_arrays``) so :class:`~repro.store.CheckpointStore` can
    persist it alongside the expert archives it vouches for.
    """

    x: np.ndarray
    golden: dict[int, ExpertOutput] = field(default_factory=dict)

    def to_arrays(self) -> dict[str, np.ndarray]:
        arrays = {"x": np.asarray(self.x)}
        for index, output in self.golden.items():
            arrays[f"probs_{index}"] = np.asarray(output.probs)
            arrays[f"entropy_{index}"] = np.asarray(output.entropy)
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "CanarySet":
        golden = {}
        for name in arrays:
            if name.startswith("probs_"):
                index = int(name[len("probs_"):])
                golden[index] = ExpertOutput(
                    probs=np.asarray(arrays[name]),
                    entropy=np.asarray(arrays[f"entropy_{index}"]))
        return cls(x=np.asarray(arrays["x"]), golden=golden)


def make_canary_set(experts, x: np.ndarray,
                    engine: str = "tape") -> CanarySet:
    """Record golden outputs for every expert on the canary batch ``x``.

    Run at deploy time, on the exact weights being deployed, with the
    team's serving engine — the golden outputs must be what an honest
    worker will compute, bit for bit.
    """
    x = np.asarray(x)
    golden = {index: expert_forward(expert, x, engine=engine)
              for index, expert in enumerate(experts)}
    return CanarySet(x=x, golden=golden)


class CanaryProber:
    """Evaluates known-answer probe replies against the golden outputs.

    The prober holds no sockets: the master broadcasts the canary batch
    (a ``CANARY`` message, answered like an INFER) on the heartbeat
    cadence and feeds each reply to :meth:`evaluate`, which returns a
    failure reason or None.  ``due()`` is the counter that makes probes
    fire every ``probe_every`` heartbeats, deterministically.
    """

    def __init__(self, config: IntegrityConfig, canaries: CanarySet):
        self.config = config
        self.canaries = canaries
        self._beats = 0

    def due(self) -> bool:
        """Advance the heartbeat counter; True when a probe should fire."""
        self._beats += 1
        return self._beats % self.config.probe_every == 0

    def evaluate(self, index: int, probs: np.ndarray, entropy: np.ndarray,
                 claimed_version: str | None = None,
                 expected_version: str | None = None) -> str | None:
        golden = self.canaries.golden.get(index)
        if golden is None:
            return None  # no golden recorded for this slot: nothing to judge
        rows = int(np.asarray(self.canaries.x).shape[0])
        reason = structural_reason(probs, entropy, rows)
        if reason is not None:
            return f"canary: {reason}"
        if (expected_version is not None
                and claimed_version != expected_version):
            return (f"canary: model version mismatch "
                    f"({_short(claimed_version)} != "
                    f"{_short(expected_version)})")
        if probs.shape != golden.probs.shape:
            return (f"canary: probs shape {probs.shape} != golden "
                    f"{golden.probs.shape}")
        atol = self.config.canary_atol
        if not np.allclose(probs, golden.probs, rtol=0.0, atol=atol,
                           equal_nan=False):
            gap = float(np.nanmax(np.abs(probs - golden.probs))) \
                if np.isfinite(probs).all() else float("inf")
            return f"canary: probs deviate from golden (max gap {gap:.3e})"
        if not np.allclose(entropy, golden.entropy, rtol=0.0, atol=atol,
                           equal_nan=False):
            return "canary: entropy deviates from golden"
        return None


@dataclass
class QuarantineRecord:
    """Cumulative integrity bookkeeping for one worker slot."""

    quarantined: bool = False
    reason: str | None = None
    quarantines: int = 0
    consecutive_passes: int = 0
    canary_failures: int = 0
    invalid_replies: int = 0
    readmissions: int = 0
    redeploys: int = 0


class QuarantineManager:
    """The quarantine state machine, one record per worker slot.

    healthy --(invalid reply | canary mismatch)--> quarantined
    quarantined --(``readmit_passes`` consecutive canary passes)--> healthy

    A quarantined slot is excluded from broadcasts (no gate, no quorum
    credit) but keeps receiving canary probes — that is its only road
    back.  Any failure while quarantined resets the pass streak.
    Thread-safe: gathers and heartbeats feed it concurrently.
    """

    def __init__(self, readmit_passes: int = 2):
        if readmit_passes < 1:
            raise ValueError("readmit_passes must be >= 1")
        self.readmit_passes = readmit_passes
        self._lock = threading.Lock()
        self._records: dict[int, QuarantineRecord] = {}

    def _record(self, index: int) -> QuarantineRecord:
        record = self._records.get(index)
        if record is None:
            record = self._records[index] = QuarantineRecord()
        return record

    def is_quarantined(self, index: int) -> bool:
        with self._lock:
            record = self._records.get(index)
            return record is not None and record.quarantined

    def quarantined(self) -> list[int]:
        """Slots currently under quarantine, sorted."""
        with self._lock:
            return sorted(i for i, r in self._records.items()
                          if r.quarantined)

    def record_invalid(self, index: int, reason: str) -> bool:
        """An inference reply failed validation; True if newly quarantined."""
        with self._lock:
            record = self._record(index)
            record.invalid_replies += 1
            return self._quarantine(record, reason)

    def record_canary_failure(self, index: int, reason: str) -> bool:
        """A canary probe failed; True if newly quarantined."""
        with self._lock:
            record = self._record(index)
            record.canary_failures += 1
            return self._quarantine(record, reason)

    def record_canary_pass(self, index: int) -> bool:
        """A canary probe passed; True if the slot was readmitted now."""
        with self._lock:
            record = self._record(index)
            if not record.quarantined:
                return False
            record.consecutive_passes += 1
            if record.consecutive_passes < self.readmit_passes:
                return False
            record.quarantined = False
            record.reason = None
            record.consecutive_passes = 0
            record.readmissions += 1
            return True

    def note_redeploy(self, index: int) -> None:
        """An auto-redeploy was pushed to this slot (bookkeeping only —
        readmission still requires canary passes on the new weights)."""
        with self._lock:
            self._record(index).redeploys += 1

    def _quarantine(self, record: QuarantineRecord, reason: str) -> bool:
        """Caller holds the lock."""
        record.consecutive_passes = 0
        if record.quarantined:
            return False
        record.quarantined = True
        record.reason = reason
        record.quarantines += 1
        return True

    def snapshot(self, index: int) -> QuarantineRecord:
        """A copy of one slot's record (all-zero for untouched slots)."""
        with self._lock:
            record = self._records.get(index)
            if record is None:
                return QuarantineRecord()
            return replace(record)
