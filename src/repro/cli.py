"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``train``      — train a TeamNet on a synthetic dataset and save it;
* ``evaluate``   — load a saved team and report team/expert accuracy;
* ``serve``      — deploy a saved team over localhost sockets and run a
  batch of live inferences through the master/worker protocol;
* ``experiment`` — run one of the paper's table/figure drivers;
* ``simulate``   — price an approach on a device/network profile;
* ``checkpoint`` — inspect a durable checkpoint store: per-generation
  validity (checksums re-verified), metadata, and the generation a
  resume would land on;
* ``resilience`` — run a seeded integrity demo on the simulated fabric
  (optionally corrupting a worker) and print the master's resilience
  table, including quarantine state.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core import TeamNet, TrainerConfig
from .data import synthetic_cifar, synthetic_mnist, train_test_split
from .distributed import deploy_local_team
from .edge import (DEVICES, WIFI, baseline_metrics, profile_model,
                   teamnet_metrics)
from .experiments import ALL_EXPERIMENTS, DEFAULT, SMALL, ExperimentScale
from .nn import build_model, downsize, mlp_spec, shake_shake_spec
from .store import CheckpointStore

__all__ = ["main", "build_parser"]


def _dataset(name: str, samples: int, seed: int):
    if name == "mnist":
        return synthetic_mnist(samples, seed=seed)
    if name == "cifar":
        return synthetic_cifar(samples, seed=seed)
    raise SystemExit(f"unknown dataset {name!r} (use mnist or cifar)")


def _reference(name: str, width: int | None):
    if name == "mnist":
        return mlp_spec(8, width=width or 64)
    return shake_shake_spec(26, width=width or 8)


def cmd_train(args) -> int:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    train, test = train_test_split(dataset, 0.2,
                                   np.random.default_rng(args.seed))
    reference = _reference(args.dataset, args.width)
    config = TrainerConfig(epochs=args.epochs, batch_size=args.batch_size,
                           seed=args.seed)
    team = TeamNet.from_reference(reference, args.experts, config=config,
                                  seed=args.seed)
    store = (CheckpointStore(args.checkpoint_dir)
             if args.checkpoint_dir else None)
    print(f"training {args.experts}x {team.expert_spec.name} on "
          f"{len(train)} samples for {args.epochs} epochs ...")
    monitor = team.fit(train, checkpoint_store=store)
    if store is not None:
        print(f"checkpoints in {args.checkpoint_dir}/ "
              f"(latest generation {store.latest_valid()})")
    print(f"team accuracy:    {team.accuracy(test):.3f}")
    print(f"expert accuracy:  "
          f"{[round(a, 3) for a in team.expert_accuracy(test)]}")
    print(f"final partitions: "
          f"{monitor.history()[-10:].mean(axis=0).round(3)}")
    team.save(args.out)
    print(f"saved team to {args.out}/")
    return 0


def cmd_evaluate(args) -> int:
    team = TeamNet.load(args.team)
    dataset = _dataset(args.dataset, args.samples, args.seed)
    print(f"loaded {team.num_experts}x {team.expert_spec.name} "
          f"from {args.team}")
    print(f"team accuracy:   {team.accuracy(dataset):.3f}")
    print(f"expert accuracy: "
          f"{[round(a, 3) for a in team.expert_accuracy(dataset)]}")
    return 0


def cmd_serve(args) -> int:
    team = TeamNet.load(args.team)
    dataset = _dataset(args.dataset, args.requests, args.seed)
    master, workers = deploy_local_team(team.experts)
    try:
        for worker in workers:
            print(f"worker listening on {worker.address}")
        correct = 0
        for i in range(args.requests):
            x = dataset.images[i:i + 1]
            preds, winner, _ = master.infer(x)
            correct += int(preds[0] == dataset.labels[i])
            print(f"request {i}: prediction={preds[0]} "
                  f"(expert {winner[0]}), label={dataset.labels[i]}")
        print(f"accuracy over {args.requests} live requests: "
              f"{correct / args.requests:.3f}")
    finally:
        master.close()
        for worker in workers:
            worker.stop()
    return 0


def cmd_experiment(args) -> int:
    driver = ALL_EXPERIMENTS.get(args.id)
    if driver is None:
        raise SystemExit(f"unknown experiment {args.id!r}; choose from "
                         f"{sorted(ALL_EXPERIMENTS)}")
    scale = SMALL if args.scale == "small" else DEFAULT
    result = driver(scale)
    print(result.render())
    return 0


def cmd_simulate(args) -> int:
    device = DEVICES.get(args.device)
    if device is None:
        raise SystemExit(f"unknown device {args.device!r}; choose from "
                         f"{sorted(DEVICES)}")
    reference = (mlp_spec(8, width=2048) if args.dataset == "mnist"
                 else shake_shake_spec(26, width=96))
    rng = np.random.default_rng(0)
    in_shape = ((reference.in_features,) if reference.family == "mlp"
                else reference.in_shape)
    base_cost = profile_model(build_model(reference, rng), in_shape)
    base = baseline_metrics(base_cost, device)
    print(f"{reference.name} baseline on {device.name}: "
          f"{base.latency_ms:.2f} ms, mem {base.memory_fraction:.1%}, "
          f"cpu {base.cpu_fraction:.1%}")
    for k in args.experts:
        spec = downsize(reference, k)
        shape = (spec.in_features,) if spec.family == "mlp" else spec.in_shape
        cost = profile_model(build_model(spec, rng), shape)
        metrics = teamnet_metrics(cost, k, device, WIFI)
        print(f"TeamNet {k}x {spec.name}: {metrics.latency_ms:.2f} ms, "
              f"mem {metrics.memory_fraction:.1%}, "
              f"cpu {metrics.cpu_fraction:.1%}")
    return 0


def cmd_checkpoint_inspect(args) -> int:
    """Re-verify every generation in a checkpoint store and report."""
    store = CheckpointStore(args.dir)
    report = store.inspect()
    if not report:
        print(f"no checkpoint generations in {args.dir}/")
        return 1
    for record in report:
        generation = record["generation"]
        if record["valid"]:
            meta = record["meta"]
            total = sum(record["entries"].values())
            print(f"gen {generation:06d}  valid    "
                  f"epoch {meta.get('epoch', '?')}  "
                  f"step {meta.get('step', '?')}  "
                  f"{meta.get('num_experts', '?')} experts  "
                  f"{len(record['entries'])} entries  {total} bytes")
        else:
            print(f"gen {generation:06d}  CORRUPT  {record['error']}")
    latest = store.latest_valid()
    if latest is None:
        print("no valid generation: a resume would refuse "
              "rather than load partial state")
        return 1
    print(f"resume would load generation {latest:06d}")
    return 0


def cmd_resilience_inspect(args) -> int:
    """Deploy a seeded team on the sim fabric, optionally corrupt one
    worker or slow one link past the deadline budget, drive canary
    probes, and print the resilience and overload tables."""
    from .distributed import (IntegrityConfig, OverloadConfig,
                              make_canary_set)
    from .edge import overload_table, resilience_table
    from .nn import MLP
    from .testkit import SimCluster, sharpen_expert
    from .testkit.faults import FaultSchedule, LinkFaults

    rng = np.random.default_rng(args.seed)
    features, classes = 8, 4
    experts = [MLP(features, classes, depth=1, width=6,
                   rng=np.random.default_rng((args.seed, i)))
               for i in range(args.experts)]
    canaries = make_canary_set(experts,
                               rng.standard_normal((4, features)))
    integrity = IntegrityConfig(probe_every=1, auto_redeploy=False)
    deadline_s = (args.deadline_ms * 1e-3
                  if args.deadline_ms is not None else None)
    schedule = None
    if deadline_s is not None and args.slow is not None:
        if not 1 <= args.slow < args.experts:
            raise SystemExit(f"--slow must name a worker slot in "
                             f"[1, {args.experts - 1}]")
        # Sim-fabric ports are assigned deterministically from the
        # ephemeral base, worker 1 first — so the slow worker's listener
        # address is known before the cluster exists.
        from .testkit.sim_transport import SimNetwork
        address = ("sim", SimNetwork._FIRST_PORT + args.slow - 1)
        lag = 3.0 * deadline_s
        schedule = FaultSchedule(seed=args.seed).with_override(
            address, request=LinkFaults(latency=(lag, lag)))
        print(f"worker {args.slow} link delayed {lag * 1e3:.0f}ms "
              f"(deadline budget {args.deadline_ms:.0f}ms)")
    with SimCluster(experts, schedule, integrity=integrity,
                    canaries=canaries) as cluster:
        if args.corrupt is not None:
            if not 1 <= args.corrupt < args.experts:
                raise SystemExit(f"--corrupt must name a worker slot in "
                                 f"[1, {args.experts - 1}]")
            cluster.corrupt_worker(args.corrupt, sharpen_expert)
            print(f"corrupted worker {args.corrupt} "
                  f"(sharpened: confidently wrong)")
        for _ in range(args.probes):
            cluster.heartbeat()
        for _ in range(args.requests):
            cluster.infer(rng.standard_normal((2, features)),
                          deadline_budget_s=deadline_s)
        snapshot = cluster.master.resilience_snapshot()
        print(resilience_table(snapshot))
        benched = [peer for peer in snapshot.values()
                   if getattr(peer, "quarantined", False)]
        for peer in benched:
            print(f"worker {peer.index} quarantined: "
                  f"{peer.quarantine_reason}")
        print(f"participants: {cluster.surviving_team}")
        # The serving-path controls: run the same requests through an
        # overload-enabled server and show limiter pressure / brownout.
        server = cluster.serve(overload=OverloadConfig())
        try:
            futures = [server.submit(rng.standard_normal((2, features)))
                       for _ in range(args.requests)]
            for future in futures:
                future.result(timeout=30.0)
        finally:
            server.close()
        print(overload_table(server.overload_snapshot()))
    return 1 if benched else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="TeamNet (ICDCS 2019) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train and save a TeamNet")
    train.add_argument("--dataset", choices=("mnist", "cifar"),
                       default="mnist")
    train.add_argument("--experts", type=int, default=2)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--samples", type=int, default=1600)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--width", type=int, default=None)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", type=Path, required=True)
    train.add_argument("--checkpoint-dir", type=Path, default=None,
                       help="write a crash-safe checkpoint generation "
                            "after every epoch")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved team")
    evaluate.add_argument("--team", type=Path, required=True)
    evaluate.add_argument("--dataset", choices=("mnist", "cifar"),
                          default="mnist")
    evaluate.add_argument("--samples", type=int, default=500)
    evaluate.add_argument("--seed", type=int, default=99)
    evaluate.set_defaults(func=cmd_evaluate)

    serve = sub.add_parser("serve", help="serve a team over sockets and "
                                         "run live requests")
    serve.add_argument("--team", type=Path, required=True)
    serve.add_argument("--dataset", choices=("mnist", "cifar"),
                       default="mnist")
    serve.add_argument("--requests", type=int, default=10)
    serve.add_argument("--seed", type=int, default=7)
    serve.set_defaults(func=cmd_serve)

    experiment = sub.add_parser("experiment",
                                help="run a paper table/figure driver")
    experiment.add_argument("--id", required=True)
    experiment.add_argument("--scale", choices=("small", "default"),
                            default="small")
    experiment.set_defaults(func=cmd_experiment)

    simulate = sub.add_parser("simulate",
                              help="price approaches on a device profile")
    simulate.add_argument("--dataset", choices=("mnist", "cifar"),
                          default="mnist")
    simulate.add_argument("--device", default="jetson-tx2-cpu")
    simulate.add_argument("--experts", type=int, nargs="+", default=[2, 4])
    simulate.set_defaults(func=cmd_simulate)

    checkpoint = sub.add_parser("checkpoint",
                                help="work with durable checkpoint stores")
    actions = checkpoint.add_subparsers(dest="action", required=True)
    inspect = actions.add_parser(
        "inspect", help="re-verify every generation's checksums and "
                        "show what a resume would load")
    inspect.add_argument("dir", type=Path)
    inspect.set_defaults(func=cmd_checkpoint_inspect)

    resilience = sub.add_parser(
        "resilience", help="inspect runtime resilience/integrity state")
    res_actions = resilience.add_subparsers(dest="action", required=True)
    res_inspect = res_actions.add_parser(
        "inspect", help="run a seeded sim-fabric demo and print the "
                        "resilience table (quarantine state included)")
    res_inspect.add_argument("--experts", type=int, default=3)
    res_inspect.add_argument("--deadline-ms", type=float, default=None,
                             help="per-request deadline budget propagated "
                                  "to the workers (shed column)")
    res_inspect.add_argument("--slow", type=int, default=None,
                             help="worker slot whose request link is "
                                  "delayed past the deadline budget "
                                  "(requires --deadline-ms)")
    res_inspect.add_argument("--corrupt", type=int, default=None,
                             metavar="WORKER",
                             help="sharpen this worker's expert so the "
                                  "canary probe quarantines it")
    res_inspect.add_argument("--probes", type=int, default=3,
                             help="heartbeat/canary rounds to drive")
    res_inspect.add_argument("--requests", type=int, default=4)
    res_inspect.add_argument("--seed", type=int, default=0)
    res_inspect.set_defaults(func=cmd_resilience_inspect)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
