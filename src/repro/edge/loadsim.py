"""Event-driven load simulation for an edge inference cluster.

The paper evaluates one-shot inference latency; a deployed TeamNet serves
a *stream* of sensor events.  This module simulates that regime: requests
arrive (Poisson or deterministic), are queued FIFO, and are served by one
or more logical servers whose service time is the per-inference latency
of an approach (from :mod:`repro.edge.metrics` or measured).  The report
gives sojourn-time percentiles, utilization, throughput and drops — which
is where TeamNet's lower per-inference latency turns into a *capacity*
advantage: the sustainable arrival rate is ``servers / service_time``.

A TeamNet team occupies every device for the duration of one inference
(the input is broadcast to all experts), so a K-node team is modelled as
``servers=1`` with TeamNet's end-to-end latency — not K parallel servers.
Baseline fleets that run K *independent* replicas of the deep model are
the ``servers=K`` case.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LoadReport", "poisson_arrivals", "uniform_arrivals",
           "simulate_queue", "sustainable_rate", "capacity_sweep",
           "OpenLoopReport", "drive_open_loop"]


def poisson_arrivals(rate: float, duration: float,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        times.append(t)
    return np.asarray(times)


def uniform_arrivals(rate: float, duration: float) -> np.ndarray:
    """Deterministic, evenly spaced arrivals with ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    step = 1.0 / rate
    return np.arange(step, duration, step)


@dataclass
class LoadReport:
    """Outcome of one queueing simulation."""

    sojourn_times: np.ndarray     # arrival-to-completion per served request
    waiting_times: np.ndarray     # arrival-to-service-start
    served: int
    dropped: int
    duration: float
    busy_time: float
    servers: int

    @property
    def utilization(self) -> float:
        """Mean fraction of server capacity in use."""
        if self.duration <= 0:
            return 0.0
        return self.busy_time / (self.duration * self.servers)

    @property
    def throughput(self) -> float:
        """Served requests per second."""
        if self.duration <= 0:
            return 0.0
        return self.served / self.duration

    @property
    def drop_rate(self) -> float:
        total = self.served + self.dropped
        return self.dropped / total if total else 0.0

    def percentile(self, q: float) -> float:
        """Sojourn-time percentile in seconds."""
        if len(self.sojourn_times) == 0:
            return float("nan")
        return float(np.percentile(self.sojourn_times, q))

    @property
    def mean_sojourn(self) -> float:
        if len(self.sojourn_times) == 0:
            return float("nan")
        return float(self.sojourn_times.mean())


def simulate_queue(arrivals: np.ndarray, service_time, servers: int = 1,
                   queue_capacity: int | None = None,
                   rng: np.random.Generator | None = None) -> LoadReport:
    """FIFO queueing simulation with ``servers`` identical servers.

    ``service_time`` is either a constant (seconds) or a callable
    ``service_time(rng) -> seconds`` for stochastic services.  Requests
    that would find more than ``queue_capacity`` requests already waiting
    are dropped (None = unbounded).
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    arrivals = np.sort(np.asarray(arrivals, dtype=float))
    rng = rng if rng is not None else np.random.default_rng()
    draw = service_time if callable(service_time) else None
    constant = None if draw else float(service_time)
    if constant is not None and constant <= 0:
        raise ValueError("service_time must be positive")

    free_at = [0.0] * servers  # min-heap of server-free times
    heapq.heapify(free_at)
    # Min-heap of service-start times of admitted-but-not-yet-started
    # requests: a request is dropped if the number still waiting at its
    # arrival exceeds the capacity.  Arrivals are sorted, so entries with
    # ``start <= arrival`` have started for every later arrival too and
    # can be popped for good — the check stays O(log n) per arrival
    # instead of rescanning the whole history (O(n²) over a long run).
    pending_starts: list[float] = []
    sojourn, waiting = [], []
    dropped = 0
    busy = 0.0
    for arrival in arrivals:
        earliest_free = heapq.heappop(free_at)
        start = max(arrival, earliest_free)
        if queue_capacity is not None:
            while pending_starts and pending_starts[0] <= arrival:
                heapq.heappop(pending_starts)
            if len(pending_starts) > queue_capacity:
                dropped += 1
                heapq.heappush(free_at, earliest_free)
                continue
        service = float(draw(rng)) if draw else constant
        if service <= 0:
            raise ValueError("service_time must be positive")
        finish = start + service
        heapq.heappush(free_at, finish)
        if queue_capacity is not None:
            heapq.heappush(pending_starts, start)
        sojourn.append(finish - arrival)
        waiting.append(start - arrival)
        busy += service
    last_finish = max(free_at) if free_at else 0.0
    duration = max(float(arrivals[-1]) if len(arrivals) else 0.0,
                   last_finish)
    return LoadReport(sojourn_times=np.asarray(sojourn),
                      waiting_times=np.asarray(waiting),
                      served=len(sojourn), dropped=dropped,
                      duration=duration, busy_time=busy, servers=servers)


@dataclass
class OpenLoopReport:
    """Outcome of one *real-request* open-loop run (:func:`drive_open_loop`)."""

    latencies_s: np.ndarray       # submit-to-completion per served request
    served: int
    rejected: int                 # submit refused (queue full / closed)
    failed: int                   # submitted but errored or timed out
    duration_s: float
    #: the per-request deadline the run was driven with (None = no SLO)
    deadline_s: float | None = None
    #: shed/failure counts keyed by exception class name — e.g.
    #: ``{"ServerOverloaded": 41, "DeadlineExpired": 7}``.  Kept as names
    #: so this module never imports the distributed layer.
    shed_by_cause: dict = field(default_factory=dict)

    @property
    def answered_latencies(self) -> np.ndarray:
        """Latencies of requests that beat the deadline (all, if none set)."""
        if self.deadline_s is None or len(self.latencies_s) == 0:
            return self.latencies_s
        return self.latencies_s[self.latencies_s <= self.deadline_s]

    @property
    def answered(self) -> int:
        """Requests served *within the deadline* — the goodput numerator."""
        return int(len(self.answered_latencies))

    @property
    def rps(self) -> float:
        """Served requests per second of wall clock."""
        if self.duration_s <= 0:
            return 0.0
        return self.served / self.duration_s

    @property
    def goodput_rps(self) -> float:
        """Answered-within-deadline requests per second of wall clock."""
        if self.duration_s <= 0:
            return 0.0
        return self.answered / self.duration_s

    def percentile(self, q: float) -> float:
        """Latency percentile over *answered* requests only — under
        overload the interesting number is how fast the answers you did
        give were, not the tail of answers nobody waited for."""
        answered = self.answered_latencies
        if len(answered) == 0:
            return float("nan")
        return float(np.percentile(answered, q))

    def to_dict(self) -> dict:
        """JSON-friendly summary (the serving bench's trajectory rows)."""
        return {
            "served": self.served,
            "answered": self.answered,
            "rejected": self.rejected,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "rps": self.rps,
            "goodput_rps": self.goodput_rps,
            "deadline_ms": (self.deadline_s * 1e3
                            if self.deadline_s is not None else None),
            "shed_by_cause": dict(sorted(self.shed_by_cause.items())),
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


def drive_open_loop(submit, arrivals: np.ndarray, inputs,
                    result_timeout: float = 30.0,
                    deadline_s: float | None = None) -> OpenLoopReport:
    """Replay an arrival schedule against a live serving endpoint.

    Unlike :func:`simulate_queue` (analytic service times), this drives
    *real requests*: at each (relative) time in ``arrivals`` the matching
    entry of ``inputs`` is handed to ``submit``.  Open-loop means the
    schedule never slows down for a backed-up server — exactly the regime
    where queueing delay shows up in the percentiles.

    ``submit`` is either asynchronous — returns a future with a
    ``result(timeout)`` method, e.g. ``TeamNetServer.submit`` — or a
    plain synchronous callable, in which case each request's latency is
    its call duration (the back-to-back baseline).  A ``submit`` that
    raises counts as rejected; a future that raises counts as failed.
    Both are additionally broken down by exception class name in the
    report's ``shed_by_cause`` (so admission sheds, deadline sheds, and
    hard failures stay distinguishable without this module importing
    the serving layer's exception types).

    With ``deadline_s`` set, every submit carries that per-request
    deadline (``submit(x, deadline_s=...)``) and the report's goodput /
    percentiles count answered-within-deadline requests only.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    t0 = time.monotonic()
    outstanding: list[tuple[float, object]] = []
    latencies: list[float] = []
    shed_by_cause: dict[str, int] = {}
    rejected = 0
    failed = 0

    def book(exc: BaseException) -> None:
        name = type(exc).__name__
        shed_by_cause[name] = shed_by_cause.get(name, 0) + 1

    for arrival, x in zip(arrivals, inputs):
        lag = arrival - (time.monotonic() - t0)
        if lag > 0:
            time.sleep(lag)
        sent = time.monotonic()
        try:
            handle = (submit(x) if deadline_s is None
                      else submit(x, deadline_s=deadline_s))
        except Exception as exc:  # noqa: BLE001 - overload counts, not dies
            rejected += 1
            book(exc)
            continue
        if hasattr(handle, "result"):
            outstanding.append((sent, handle))
        else:
            latencies.append(time.monotonic() - sent)
    for sent, future in outstanding:
        try:
            future.result(timeout=result_timeout)
        except Exception as exc:  # noqa: BLE001 - booked as a failure
            failed += 1
            book(exc)
            continue
        done = getattr(future, "done_at", None)
        latencies.append((done if done is not None
                          else time.monotonic()) - sent)
    duration = time.monotonic() - t0
    return OpenLoopReport(latencies_s=np.asarray(latencies),
                          served=len(latencies), rejected=rejected,
                          failed=failed, duration_s=duration,
                          deadline_s=deadline_s,
                          shed_by_cause=shed_by_cause)


def sustainable_rate(service_time_s: float, servers: int = 1) -> float:
    """The arrival rate (req/s) at which utilization reaches 1."""
    if service_time_s <= 0:
        raise ValueError("service_time must be positive")
    return servers / service_time_s


def capacity_sweep(service_time_s: float, rates, duration: float = 60.0,
                   servers: int = 1, seed: int = 0) -> list[dict]:
    """Simulate a sweep of Poisson arrival rates; returns one summary dict
    per rate (rate, utilization, mean/p95 sojourn, drop_rate)."""
    out = []
    for rate in rates:
        arrivals = poisson_arrivals(rate, duration,
                                    np.random.default_rng(seed))
        report = simulate_queue(arrivals, service_time_s, servers=servers,
                                queue_capacity=64)
        out.append({
            "rate": float(rate),
            "utilization": report.utilization,
            "mean_sojourn_ms": report.mean_sojourn * 1e3,
            "p95_sojourn_ms": report.percentile(95) * 1e3,
            "drop_rate": report.drop_rate,
        })
    return out
