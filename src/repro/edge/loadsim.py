"""Event-driven load simulation for an edge inference cluster.

The paper evaluates one-shot inference latency; a deployed TeamNet serves
a *stream* of sensor events.  This module simulates that regime: requests
arrive (Poisson or deterministic), are queued FIFO, and are served by one
or more logical servers whose service time is the per-inference latency
of an approach (from :mod:`repro.edge.metrics` or measured).  The report
gives sojourn-time percentiles, utilization, throughput and drops — which
is where TeamNet's lower per-inference latency turns into a *capacity*
advantage: the sustainable arrival rate is ``servers / service_time``.

A TeamNet team occupies every device for the duration of one inference
(the input is broadcast to all experts), so a K-node team is modelled as
``servers=1`` with TeamNet's end-to-end latency — not K parallel servers.
Baseline fleets that run K *independent* replicas of the deep model are
the ``servers=K`` case.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LoadReport", "poisson_arrivals", "uniform_arrivals",
           "simulate_queue", "sustainable_rate", "capacity_sweep"]


def poisson_arrivals(rate: float, duration: float,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        times.append(t)
    return np.asarray(times)


def uniform_arrivals(rate: float, duration: float) -> np.ndarray:
    """Deterministic, evenly spaced arrivals with ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    step = 1.0 / rate
    return np.arange(step, duration, step)


@dataclass
class LoadReport:
    """Outcome of one queueing simulation."""

    sojourn_times: np.ndarray     # arrival-to-completion per served request
    waiting_times: np.ndarray     # arrival-to-service-start
    served: int
    dropped: int
    duration: float
    busy_time: float
    servers: int

    @property
    def utilization(self) -> float:
        """Mean fraction of server capacity in use."""
        if self.duration <= 0:
            return 0.0
        return self.busy_time / (self.duration * self.servers)

    @property
    def throughput(self) -> float:
        """Served requests per second."""
        if self.duration <= 0:
            return 0.0
        return self.served / self.duration

    @property
    def drop_rate(self) -> float:
        total = self.served + self.dropped
        return self.dropped / total if total else 0.0

    def percentile(self, q: float) -> float:
        """Sojourn-time percentile in seconds."""
        if len(self.sojourn_times) == 0:
            return float("nan")
        return float(np.percentile(self.sojourn_times, q))

    @property
    def mean_sojourn(self) -> float:
        if len(self.sojourn_times) == 0:
            return float("nan")
        return float(self.sojourn_times.mean())


def simulate_queue(arrivals: np.ndarray, service_time, servers: int = 1,
                   queue_capacity: int | None = None,
                   rng: np.random.Generator | None = None) -> LoadReport:
    """FIFO queueing simulation with ``servers`` identical servers.

    ``service_time`` is either a constant (seconds) or a callable
    ``service_time(rng) -> seconds`` for stochastic services.  Requests
    that would find more than ``queue_capacity`` requests already waiting
    are dropped (None = unbounded).
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    arrivals = np.sort(np.asarray(arrivals, dtype=float))
    rng = rng if rng is not None else np.random.default_rng()
    draw = service_time if callable(service_time) else None
    constant = None if draw else float(service_time)
    if constant is not None and constant <= 0:
        raise ValueError("service_time must be positive")

    free_at = [0.0] * servers  # min-heap of server-free times
    heapq.heapify(free_at)
    # Track queued-but-not-started completion estimate for drops: a request
    # is dropped if the number of requests that will still be waiting at
    # its arrival exceeds the capacity.
    pending_starts: list[float] = []   # service-start times of admitted reqs
    sojourn, waiting = [], []
    dropped = 0
    busy = 0.0
    for arrival in arrivals:
        earliest_free = heapq.heappop(free_at)
        start = max(arrival, earliest_free)
        if queue_capacity is not None:
            waiting_now = sum(1 for s in pending_starts if s > arrival)
            if waiting_now > queue_capacity:
                dropped += 1
                heapq.heappush(free_at, earliest_free)
                continue
        service = float(draw(rng)) if draw else constant
        if service <= 0:
            raise ValueError("service_time must be positive")
        finish = start + service
        heapq.heappush(free_at, finish)
        pending_starts.append(start)
        sojourn.append(finish - arrival)
        waiting.append(start - arrival)
        busy += service
    last_finish = max(free_at) if free_at else 0.0
    duration = max(float(arrivals[-1]) if len(arrivals) else 0.0,
                   last_finish)
    return LoadReport(sojourn_times=np.asarray(sojourn),
                      waiting_times=np.asarray(waiting),
                      served=len(sojourn), dropped=dropped,
                      duration=duration, busy_time=busy, servers=servers)


def sustainable_rate(service_time_s: float, servers: int = 1) -> float:
    """The arrival rate (req/s) at which utilization reaches 1."""
    if service_time_s <= 0:
        raise ValueError("service_time must be positive")
    return servers / service_time_s


def capacity_sweep(service_time_s: float, rates, duration: float = 60.0,
                   servers: int = 1, seed: int = 0) -> list[dict]:
    """Simulate a sweep of Poisson arrival rates; returns one summary dict
    per rate (rate, utilization, mean/p95 sojourn, drop_rate)."""
    out = []
    for rate in rates:
        arrivals = poisson_arrivals(rate, duration,
                                    np.random.default_rng(seed))
        report = simulate_queue(arrivals, service_time_s, servers=servers,
                                queue_capacity=64)
        out.append({
            "rate": float(rate),
            "utilization": report.utilization,
            "mean_sojourn_ms": report.mean_sojourn * 1e3,
            "p95_sojourn_ms": report.percentile(95) * 1e3,
            "drop_rate": report.drop_rate,
        })
    return out
