"""Per-approach simulated metrics (latency, memory %, CPU %, GPU %).

Each function mirrors the message pattern of the corresponding functional
runtime in :mod:`repro.distributed` (tests assert the analytic message
counts equal the counters measured on the real localhost runs) and prices
it against a :class:`DeviceProfile` and :class:`NetworkProfile`.

Resource-percentage heuristics (documented here because they are the
"tuned constants" of the reproduction):

* memory%  = (framework + parameters + 2x peak activation + input) / RAM;
* CPU%     = (compute_time * compute_core_fraction
              + comm_time * spin_fraction) / latency, where spin_fraction
  reflects how busily the protocol waits (MPI progress engines spin:
  0.30; socket/RPC runtimes block in the kernel: 0.05);
* GPU%     = gpu_compute_time / latency * gpu_utilization_fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import DTYPE_BYTES, ModelCost
from .device import DeviceProfile
from .network import NetworkProfile

__all__ = ["Metrics", "baseline_metrics", "teamnet_metrics",
           "teamnet_straggler_metrics", "gather_stall_time",
           "mpi_matrix_metrics", "mpi_kernel_metrics", "mpi_branch_metrics",
           "moe_grpc_metrics", "moe_mpi_metrics", "SPIN_FRACTION",
           "RESULT_BYTES"]

SPIN_FRACTION = {"sockets": 0.05, "mpi": 0.30, "rpc": 0.05}

# A TeamNet worker replies with (probs, entropy): (C+1) floats + framing.
RESULT_BYTES = 11 * DTYPE_BYTES + 64


@dataclass(frozen=True)
class Metrics:
    """Simulated per-inference metrics for one approach on one node."""

    approach: str
    latency_s: float
    memory_fraction: float
    cpu_fraction: float
    gpu_fraction: float | None = None
    energy_j: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def energy_mj(self) -> float:
        return self.energy_j * 1e3


def _memory_fraction(device: DeviceProfile, cost: ModelCost) -> float:
    resident = (device.framework_bytes + cost.param_bytes
                + 2 * cost.peak_activation_bytes + cost.input_bytes)
    return min(1.0, resident / device.memory_bytes)


def _make_metrics(approach: str, device: DeviceProfile, cost: ModelCost,
                  compute_s: float, comm_s: float,
                  protocol: str = "sockets") -> Metrics:
    latency = compute_s + comm_s
    spin = SPIN_FRACTION[protocol]
    busy = compute_s * device.compute_core_fraction + comm_s * spin
    cpu = min(1.0, busy / latency) if latency > 0 else 0.0
    gpu = None
    if device.is_gpu:
        gpu = min(1.0, (compute_s / latency) * device.gpu_utilization_fraction
                  if latency > 0 else 0.0)
    return Metrics(approach=approach, latency_s=latency,
                   memory_fraction=_memory_fraction(device, cost),
                   cpu_fraction=cpu, gpu_fraction=gpu,
                   energy_j=device.energy_joules(compute_s, comm_s))


def baseline_metrics(cost: ModelCost, device: DeviceProfile) -> Metrics:
    """The undistributed reference model on a single device."""
    compute = device.compute_time(cost.total_flops, cost.num_ops)
    return _make_metrics("baseline", device, cost, compute, 0.0)


def teamnet_metrics(expert_cost: ModelCost, team_size: int,
                    device: DeviceProfile, net: NetworkProfile) -> Metrics:
    """TeamNet master-node metrics (Figure 1(d)).

    Communication is exactly two phases: broadcast the input to K-1 peers,
    then gather K-1 tiny (prediction, uncertainty) replies.  All experts
    compute in parallel on identical devices, so the compute term is one
    expert's forward.
    """
    if team_size < 2:
        raise ValueError("TeamNet needs >= 2 nodes")
    compute = device.compute_time(expert_cost.total_flops,
                                  expert_cost.num_ops)
    peers = team_size - 1
    comm = (net.broadcast_time(expert_cost.input_bytes, peers)
            + net.gather_time(RESULT_BYTES, peers))
    return _make_metrics(f"teamnet-{team_size}", device, expert_cost,
                         compute, comm)


def gather_stall_time(straggler_s: float, reply_timeout_s: float,
                      num_stragglers: int = 1,
                      parallel_gather: bool = True) -> float:
    """Extra master wait caused by stragglers during the reply gather.

    With the runtime's concurrent gather all replies are read under one
    per-inference deadline, so any number of stragglers costs the master
    at most ``min(straggler_s, reply_timeout_s)`` *once*.  A serialized
    gather (read peers in connection order with a per-peer timeout) pays
    that stall once per straggler — the K× pathology the concurrent
    collector exists to avoid.
    """
    if num_stragglers < 0:
        raise ValueError("num_stragglers must be >= 0")
    if not num_stragglers:
        return 0.0
    stall = min(straggler_s, reply_timeout_s)
    return stall if parallel_gather else num_stragglers * stall


def teamnet_straggler_metrics(expert_cost: ModelCost, team_size: int,
                              device: DeviceProfile, net: NetworkProfile,
                              straggler_s: float, reply_timeout_s: float,
                              num_stragglers: int = 1,
                              parallel_gather: bool = True) -> Metrics:
    """TeamNet master metrics with ``num_stragglers`` slow/dead workers.

    Prices the same broadcast+gather pattern as :func:`teamnet_metrics`
    plus the gather stall from :func:`gather_stall_time` — used by the
    straggler-tolerance benchmark to compare the concurrent collector
    against the serialized-gather pathology.
    """
    if team_size < 2:
        raise ValueError("TeamNet needs >= 2 nodes")
    if num_stragglers > team_size - 1:
        raise ValueError("more stragglers than workers")
    compute = device.compute_time(expert_cost.total_flops,
                                  expert_cost.num_ops)
    peers = team_size - 1
    healthy = peers - num_stragglers
    comm = (net.broadcast_time(expert_cost.input_bytes, peers)
            + net.gather_time(RESULT_BYTES, healthy)
            + gather_stall_time(straggler_s, reply_timeout_s,
                                num_stragglers, parallel_gather))
    mode = "parallel" if parallel_gather else "serial"
    return _make_metrics(f"teamnet-{team_size}-straggler-{mode}", device,
                         expert_cost, compute, comm)


def _scaled_cost(cost: ModelCost, size: int, kinds: tuple[str, ...]) -> float:
    """FLOPs with layers of ``kinds`` divided across ``size`` ranks and the
    rest computed redundantly on every rank."""
    total = 0.0
    for layer in cost.layers:
        total += layer.flops / size if layer.kind in kinds else layer.flops
    return total


def mpi_matrix_metrics(cost: ModelCost, size: int, device: DeviceProfile,
                       net: NetworkProfile) -> Metrics:
    """MPI-Matrix: one allgather of the activation per Linear layer."""
    flops = _scaled_cost(cost, size, ("linear",))
    compute = device.compute_time(flops, cost.num_ops)
    comm = sum(net.allgather_time(layer.out_bytes / size, size)
               for layer in cost.layers_of_kind("linear"))
    return _make_metrics(f"mpi-matrix-{size}", device, cost, compute, comm,
                         protocol="mpi")


def mpi_kernel_metrics(cost: ModelCost, size: int, device: DeviceProfile,
                       net: NetworkProfile) -> Metrics:
    """MPI-Kernel: one allgather of the feature map per Conv layer."""
    flops = _scaled_cost(cost, size, ("conv",))
    compute = device.compute_time(flops, cost.num_ops)
    comm = sum(net.allgather_time(layer.out_bytes / size, size)
               for layer in cost.layers_of_kind("conv"))
    return _make_metrics(f"mpi-kernel-{size}", device, cost, compute, comm,
                         protocol="mpi")


def mpi_branch_metrics(cost: ModelCost, device: DeviceProfile,
                       net: NetworkProfile) -> Metrics:
    """MPI-Branch (2 nodes): each rank computes one branch per block and the
    ranks swap branch outputs at each block boundary."""
    branch2_flops = sum(layer.flops for layer in cost.layers
                        if ".branch2" in layer.name)
    flops = cost.total_flops - branch2_flops  # rank computes one branch
    compute = device.compute_time(flops, cost.num_ops)
    comm = sum(net.p2p_exchange_time(layer.out_bytes)
               for layer in cost.layers if layer.kind == "mix")
    return _make_metrics("mpi-branch-2", device, cost, compute, comm,
                         protocol="mpi")


def moe_grpc_metrics(expert_cost: ModelCost, gate_cost: ModelCost,
                     team_size: int, device: DeviceProfile,
                     net: NetworkProfile, k_selected: int = 2) -> Metrics:
    """SG-MoE-G: gate runs first, then one RPC per selected expert.

    Requests are serialized on the shared radio; expert compute overlaps
    the master's wait, so latency = gate + dispatch airtime + one expert
    forward + replies.
    """
    k_selected = min(k_selected, team_size)
    gate = device.compute_time(gate_cost.total_flops, gate_cost.num_ops)
    expert = device.compute_time(expert_cost.total_flops,
                                 expert_cost.num_ops)
    # With K == k every expert runs and one of them is the local gate node;
    # with K > k the top-k picks are almost surely all remote.
    remote = k_selected - 1 if team_size == k_selected else k_selected
    dispatch = (net.latency_s + remote * net.rpc_overhead_s
                + remote * expert_cost.input_bytes / net.bandwidth_bytes_per_s
                if remote else 0.0)
    replies = net.gather_time(RESULT_BYTES, remote) if remote else 0.0
    comm = dispatch + replies
    return _make_metrics(f"sg-moe-g-{team_size}", device, expert_cost,
                         gate + expert, comm, protocol="rpc")


def moe_mpi_metrics(expert_cost: ModelCost, gate_cost: ModelCost,
                    team_size: int, device: DeviceProfile,
                    net: NetworkProfile,
                    p2p_overhead_s: float = 1.5e-3) -> Metrics:
    """SG-MoE-M: the gate node MPI-sends the input to every expert rank and
    MPI-receives every output (all experts compute; gate weights zero out
    the non-top-k).  Twice (K-1) point-to-point messages with per-message
    MPI overhead."""
    gate = device.compute_time(gate_cost.total_flops, gate_cost.num_ops)
    expert = device.compute_time(expert_cost.total_flops,
                                 expert_cost.num_ops)
    peers = team_size - 1
    outbound = peers * (net.latency_s + p2p_overhead_s
                        + expert_cost.input_bytes / net.bandwidth_bytes_per_s)
    inbound = peers * (net.latency_s + p2p_overhead_s
                       + RESULT_BYTES / net.bandwidth_bytes_per_s)
    comm = outbound + inbound
    return _make_metrics(f"sg-moe-m-{team_size}", device, expert_cost,
                         gate + expert, comm, protocol="mpi")
