"""Wall-clock measurement helpers for the functional (localhost) runs.

The tables in the paper come from the analytic simulator
(:mod:`repro.edge.metrics`); these helpers exist so that examples and
benchmarks can *also* time the real socket runtimes on localhost and sanity
check relative orderings against the simulation.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "measure_latency", "measure_peak_memory"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over repeated latency samples (seconds)."""

    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float
    samples: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3


def measure_latency(fn, repeats: int = 20, warmup: int = 3) -> LatencySummary:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = np.empty(repeats)
    for i in range(repeats):
        start = time.perf_counter()
        fn()
        samples[i] = time.perf_counter() - start
    return LatencySummary(
        mean=float(samples.mean()),
        p50=float(np.percentile(samples, 50)),
        p95=float(np.percentile(samples, 95)),
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        samples=repeats,
    )


def measure_peak_memory(fn) -> tuple[object, int]:
    """Run ``fn()`` under tracemalloc; return (result, peak bytes)."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak
