"""Wall-clock measurement helpers for the functional (localhost) runs.

The tables in the paper come from the analytic simulator
(:mod:`repro.edge.metrics`); these helpers exist so that examples and
benchmarks can *also* time the real socket runtimes on localhost and sanity
check relative orderings against the simulation.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "measure_latency", "measure_peak_memory",
           "resilience_table", "overload_table"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over repeated latency samples (seconds)."""

    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float
    samples: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3


def measure_latency(fn, repeats: int = 20, warmup: int = 3) -> LatencySummary:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = np.empty(repeats)
    for i in range(repeats):
        start = time.perf_counter()
        fn()
        samples[i] = time.perf_counter() - start
    return LatencySummary(
        mean=float(samples.mean()),
        p50=float(np.percentile(samples, 50)),
        p95=float(np.percentile(samples, 95)),
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        samples=repeats,
    )


def measure_peak_memory(fn) -> tuple[object, int]:
    """Run ``fn()`` under tracemalloc; return (result, peak bytes)."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def resilience_table(snapshot) -> str:
    """Render a master's control-plane state as a fixed-width table.

    ``snapshot`` is ``TeamNetMaster.resilience_snapshot()`` (or any
    mapping of index to objects with the
    :class:`~repro.distributed.resilience.PeerResilience` attributes —
    duck-typed so this module needs no import from the runtime).  One
    row per worker: breaker state, suspicion score, latency EWMA and the
    cumulative reply/failure/hedge counters an operator needs to see why
    a worker is being skipped.  The ``quar`` column carries the
    integrity verdict: ``-`` (healthy), ``QUAR`` (currently benched;
    the failing reason follows the table via the snapshot's
    ``quarantine_reason``), or ``N×`` lifetime quarantine episodes for
    a slot that was benched and readmitted.
    """
    header = ["worker", "addr", "state", "breaker", "suspicion",
              "ewma (ms)", "replies", "failures", "invalid", "quar",
              "shed", "hedges", "reconnects"]
    rows = [header]
    for index in sorted(snapshot):
        peer = snapshot[index]
        ewma = peer.ewma_reply_latency_s
        quarantined = getattr(peer, "quarantined", False)
        quarantines = getattr(peer, "quarantines", 0)
        if quarantined:
            quar = "QUAR"
        elif quarantines:
            quar = f"{quarantines}x"
        else:
            quar = "-"
        # Deadline sheds: whole-request EXPIRED replies plus partially
        # expired segments the worker dropped mid-batch.
        shed = (getattr(peer, "expired_replies", 0)
                + getattr(peer, "expired_segments", 0))
        rows.append([
            str(peer.index),
            f"{peer.address[0]}:{peer.address[1]}",
            "up" if peer.alive else "down",
            peer.breaker_state,
            f"{peer.suspicion_score:.2f}" + ("!" if peer.suspect else ""),
            "-" if ewma is None else f"{ewma * 1e3:.2f}",
            str(peer.replies),
            str(peer.failures),
            str(getattr(peer, "invalid_replies", 0)),
            quar,
            str(shed) if shed else "-",
            str(peer.hedges),
            str(peer.reconnects),
        ])
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = ["  ".join(cell.ljust(width)
                       for cell, width in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def overload_table(snapshot: dict) -> str:
    """Render ``TeamNetServer.overload_snapshot()`` for an operator.

    One line per control: the AIMD limiter (current limit, outstanding,
    smoothed pressure, admit/shed counts), the brownout ladder (level
    name plus escalation/recovery counts), and — when the master carries
    one — the retry budget (tokens left, spent/denied).  With overload
    control off, says so in one line.
    """
    if not snapshot.get("enabled"):
        return "overload control: disabled"
    limiter = snapshot["limiter"]
    lines = [
        "overload control: enabled",
        (f"  limiter   limit={limiter['limit']}"
         f" outstanding={limiter['outstanding']}"
         f" pressure={limiter['pressure']:.2f}"
         f" admitted={limiter['admitted']} shed={limiter['shed']}"),
    ]
    brownout = snapshot.get("brownout")
    if brownout is not None:
        lines.append(
            f"  brownout  level={brownout['level_name']}"
            f" escalations={brownout['escalations']}"
            f" recoveries={brownout['recoveries']}")
    budget = snapshot.get("retry_budget")
    if budget is not None:
        lines.append(
            f"  retries   tokens={budget['tokens']:.1f}"
            f"/{budget['capacity']:.1f}"
            f" spent={budget['spent']} denied={budget['denied']}")
    return "\n".join(lines)
