"""Edge device profiles.

Analytic stand-ins for the paper's hardware (see DESIGN.md).  Throughput
numbers are *effective* dense-compute rates (not datasheet peaks), chosen
so the simulated baseline latencies land in the regime the paper reports:
SS-26 at width 96 costs ~8.3 GFLOP/inference, giving ~380 ms on the TX2
CPU profile (Table II(a): 378.2 ms) and ~14 ms on the TX2 GPU profile
(Table II(b): 14.3 ms).  The per-op dispatch overhead dominates tiny
models on the GPU, which is what makes offloading unprofitable there —
the paper's own observation in Table I(b).

``framework_bytes`` models the resident ML-framework footprint (TensorFlow
runtime, CUDA context) that dominates the paper's memory-% columns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "RASPBERRY_PI_3B", "JETSON_TX2_CPU",
           "JETSON_TX2_GPU", "DEVICES"]


@dataclass(frozen=True)
class DeviceProfile:
    """An edge device's analytic performance model."""

    name: str
    flops_per_second: float     # effective dense throughput
    memory_bytes: float         # total RAM
    num_cores: int
    op_overhead_s: float        # fixed dispatch cost per layer/op
    framework_bytes: float      # resident framework footprint
    compute_core_fraction: float  # share of cores busy during dense compute
    is_gpu: bool = False
    gpu_utilization_fraction: float = 0.0  # GPU busy share during kernels
    compute_power_w: float = 5.0   # power draw while computing
    comm_power_w: float = 2.0      # power draw while waiting on the radio

    def compute_time(self, flops: float, num_ops: int) -> float:
        """Seconds to execute ``flops`` spread over ``num_ops`` layers."""
        return flops / self.flops_per_second + num_ops * self.op_overhead_s

    def energy_joules(self, compute_s: float, comm_s: float) -> float:
        """Per-inference energy: busy power during compute plus radio/idle
        power during communication (edge batteries care about both)."""
        return (compute_s * self.compute_power_w
                + comm_s * self.comm_power_w)


RASPBERRY_PI_3B = DeviceProfile(
    name="raspberry-pi-3b+",
    flops_per_second=3.0e9,
    memory_bytes=1.0 * 2**30,
    num_cores=4,
    op_overhead_s=80e-6,
    framework_bytes=130 * 2**20,
    compute_core_fraction=0.70,
    compute_power_w=5.0,       # RPi 3B+ under CPU load
    comm_power_w=2.2,
)

JETSON_TX2_CPU = DeviceProfile(
    name="jetson-tx2-cpu",
    flops_per_second=22.0e9,
    memory_bytes=8.0 * 2**30,
    num_cores=6,
    op_overhead_s=30e-6,
    framework_bytes=400 * 2**20,
    compute_core_fraction=0.55,
    compute_power_w=9.0,       # TX2 CPU cluster busy
    comm_power_w=3.0,
)

JETSON_TX2_GPU = DeviceProfile(
    name="jetson-tx2-gpu",
    flops_per_second=600.0e9,
    memory_bytes=8.0 * 2**30,   # unified memory
    num_cores=6,
    op_overhead_s=20e-6,        # kernel launch latency
    framework_bytes=650 * 2**20,  # TF + CUDA/cuDNN context
    compute_core_fraction=0.20,   # CPU only feeds the GPU
    is_gpu=True,
    gpu_utilization_fraction=0.30,
    compute_power_w=15.0,      # GPU + CPU host busy
    comm_power_w=3.5,
)

DEVICES = {
    profile.name: profile
    for profile in (RASPBERRY_PI_3B, JETSON_TX2_CPU, JETSON_TX2_GPU)
}
