"""Analytic model cost profiler: FLOPs, parameter bytes, activation sizes.

Walks a :mod:`repro.nn` module tree with shape propagation and emits a
per-layer cost breakdown.  The edge latency/memory simulation consumes
these numbers; the per-layer activation sizes additionally drive the
communication costs of the MPI-Matrix/Kernel/Branch baselines (which
exchange activations per layer).

Conventions: one multiply-accumulate = 2 FLOPs; deployment dtype is
float32 (4 bytes) regardless of the float64 training dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                         Flatten, GlobalAvgPool2d, Identity, Linear,
                         MaxPool2d, Module, ReLU, Sequential, Sigmoid, Tanh)
from ..nn.models import MLP, ShakeShakeBlock, ShakeShakeCNN, _Branch, _Shortcut

__all__ = ["LayerCost", "ModelCost", "profile_model", "DTYPE_BYTES"]

DTYPE_BYTES = 4


@dataclass(frozen=True)
class LayerCost:
    """Cost of a single primitive layer."""

    name: str
    kind: str                    # linear | conv | bn | act | pool | mix
    flops: float                 # per single input sample
    param_bytes: int
    out_shape: tuple[int, ...]   # per-sample output shape

    @property
    def out_numel(self) -> int:
        return int(np.prod(self.out_shape))

    @property
    def out_bytes(self) -> int:
        return self.out_numel * DTYPE_BYTES


@dataclass
class ModelCost:
    """Aggregate cost of a model for one input sample."""

    layers: list[LayerCost] = field(default_factory=list)
    in_shape: tuple[int, ...] = ()

    @property
    def total_flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def num_ops(self) -> int:
        return len(self.layers)

    @property
    def peak_activation_bytes(self) -> int:
        if not self.layers:
            return 0
        return max(layer.out_bytes for layer in self.layers)

    @property
    def input_bytes(self) -> int:
        return int(np.prod(self.in_shape)) * DTYPE_BYTES

    def layers_of_kind(self, kind: str) -> list[LayerCost]:
        return [layer for layer in self.layers if layer.kind == kind]


class _Tracer:
    """Shape-propagating cost accumulator."""

    def __init__(self):
        self.layers: list[LayerCost] = []

    def add(self, name, kind, flops, param_bytes, out_shape):
        self.layers.append(LayerCost(name, kind, float(flops),
                                     int(param_bytes), tuple(out_shape)))

    # ------------------------------------------------------------- dispatch
    def trace(self, module: Module, shape: tuple[int, ...],
              prefix: str = "") -> tuple[int, ...]:
        name = prefix or type(module).__name__
        if isinstance(module, (MLP,)):
            return self.trace(module.net, shape, name + ".net")
        if isinstance(module, Sequential):
            for i, child in enumerate(module):
                shape = self.trace(child, shape, f"{name}[{i}]")
            return shape
        if isinstance(module, ShakeShakeCNN):
            return self._trace_shake_cnn(module, shape, name)
        if isinstance(module, ShakeShakeBlock):
            return self._trace_block(module, shape, name)
        if isinstance(module, _Branch):
            return self._trace_branch(module, shape, name)
        if isinstance(module, _Shortcut):
            shape = self.trace(module.conv, shape, name + ".conv")
            return self.trace(module.bn, shape, name + ".bn")
        if isinstance(module, Flatten):
            return (int(np.prod(shape)),)
        if isinstance(module, Linear):
            flops = 2.0 * module.in_features * module.out_features
            params = module.weight.size + (
                module.bias.size if module.bias is not None else 0)
            self.add(name, "linear", flops, params * DTYPE_BYTES,
                     (module.out_features,))
            return (module.out_features,)
        if isinstance(module, Conv2d):
            return self._trace_conv(module, shape, name)
        if isinstance(module, (BatchNorm1d, BatchNorm2d)):
            numel = int(np.prod(shape))
            params = 2 * module.num_features
            self.add(name, "bn", 4.0 * numel, params * DTYPE_BYTES, shape)
            return shape
        if isinstance(module, (ReLU, Tanh, Sigmoid)):
            numel = int(np.prod(shape))
            self.add(name, "act", float(numel), 0, shape)
            return shape
        if isinstance(module, (Dropout, Identity)):
            return shape
        if isinstance(module, (MaxPool2d, AvgPool2d)):
            c, h, w = shape
            out_h = (h - module.kernel_size) // module.stride + 1
            out_w = (w - module.kernel_size) // module.stride + 1
            out = (c, out_h, out_w)
            self.add(name, "pool",
                     float(np.prod(out)) * module.kernel_size**2, 0, out)
            return out
        if isinstance(module, GlobalAvgPool2d):
            c, h, w = shape
            self.add(name, "pool", float(c * h * w), 0, (c,))
            return (c,)
        raise TypeError(f"cannot profile module of type {type(module)}")

    # ----------------------------------------------------------- composites
    def _trace_conv(self, conv: Conv2d, shape, name):
        c, h, w = shape
        if c != conv.in_channels:
            raise ValueError(
                f"{name}: expected {conv.in_channels} channels, got {c}")
        out_h = (h + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
        out_w = (w + 2 * conv.padding - conv.kernel_size) // conv.stride + 1
        out = (conv.out_channels, out_h, out_w)
        flops = (2.0 * conv.in_channels * conv.kernel_size**2
                 * conv.out_channels * out_h * out_w)
        params = conv.weight.size + (
            conv.bias.size if conv.bias is not None else 0)
        self.add(name, "conv", flops, params * DTYPE_BYTES, out)
        return out

    def _trace_branch(self, branch: _Branch, shape, name):
        shape = self.trace(branch.conv1, shape, name + ".conv1")
        shape = self.trace(branch.bn1, shape, name + ".bn1")
        self.add(name + ".relu", "act", float(np.prod(shape)), 0, shape)
        shape = self.trace(branch.conv2, shape, name + ".conv2")
        return self.trace(branch.bn2, shape, name + ".bn2")

    def _trace_block(self, block: ShakeShakeBlock, shape, name):
        out = self._trace_branch(block.branch1, shape, name + ".branch1")
        self._trace_branch(block.branch2, shape, name + ".branch2")
        self.trace(block.shortcut, shape, name + ".shortcut")
        # Mixing (2 muls + add) and the residual add + final relu.
        self.add(name + ".mix", "mix", 4.0 * np.prod(out), 0, out)
        return out

    def _trace_shake_cnn(self, model: ShakeShakeCNN, shape, name):
        shape = self.trace(model.stem, shape, name + ".stem")
        shape = self.trace(model.stem_bn, shape, name + ".stem_bn")
        self.add(name + ".relu", "act", float(np.prod(shape)), 0, shape)
        for i, block in enumerate(model.stages):
            shape = self._trace_block(block, shape, f"{name}.block{i}")
        shape = self.trace(model.pool, shape, name + ".pool")
        return self.trace(model.fc, shape, name + ".fc")


def profile_model(model: Module, in_shape: tuple[int, ...]) -> ModelCost:
    """Profile ``model`` for per-sample input shape ``in_shape``.

    ``in_shape`` excludes the batch dimension, e.g. ``(3, 32, 32)`` or
    ``(784,)``.
    """
    tracer = _Tracer()
    tracer.trace(model, tuple(in_shape))
    return ModelCost(layers=tracer.layers, in_shape=tuple(in_shape))
