"""Wireless network model.

Models the WiFi link between edge devices: a fixed per-message latency
(MAC scheduling + protocol stack) plus serialized airtime (all stations
share one radio channel, so concurrent transfers do not overlap).  MPI
collectives additionally pay a per-round synchronization penalty
(``mpi_sync_s``) capturing the progress-engine polling and convergecast
contention the paper's MPI numbers exhibit — this constant is calibrated
against Table I(a)'s MPI-Matrix row (see EXPERIMENTS.md) and is the single
"magic number" in the communication model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkProfile", "WIFI", "ETHERNET"]


@dataclass(frozen=True)
class NetworkProfile:
    """Analytic link model shared by all nodes on the wireless segment."""

    name: str
    latency_s: float              # one-way per-message latency
    bandwidth_bytes_per_s: float  # shared channel throughput
    mpi_sync_s: float = 0.0       # extra cost per MPI collective round
    rpc_overhead_s: float = 0.0   # extra cost per RPC round trip

    # ----------------------------------------------------------- primitives
    def transfer_time(self, nbytes: float, messages: int = 1) -> float:
        """Airtime + latency for ``messages`` serialized transfers."""
        return messages * self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def broadcast_time(self, nbytes: float, num_peers: int) -> float:
        """Master sends ``nbytes`` to each of ``num_peers`` over one radio.

        One message latency is paid up front; the payload airtime repeats
        per peer because the channel is shared.
        """
        if num_peers <= 0:
            return 0.0
        return (self.latency_s
                + num_peers * nbytes / self.bandwidth_bytes_per_s)

    def gather_time(self, nbytes_each: float, num_peers: int) -> float:
        """Collect ``nbytes_each`` from each peer (serialized replies)."""
        if num_peers <= 0:
            return 0.0
        return (self.latency_s
                + num_peers * nbytes_each / self.bandwidth_bytes_per_s)

    # ----------------------------------------------------------- collectives
    def allgather_time(self, nbytes_per_rank: float, size: int) -> float:
        """Full-mesh allgather: K*(K-1) serialized messages + sync."""
        if size <= 1:
            return 0.0
        messages = size * (size - 1)
        airtime = messages * nbytes_per_rank / self.bandwidth_bytes_per_s
        rounds = max(1, math.ceil(math.log2(size)))
        return (rounds * (2 * self.latency_s + self.mpi_sync_s)) + airtime

    def p2p_exchange_time(self, nbytes_each: float) -> float:
        """Two ranks swap payloads (MPI-Branch per-block exchange)."""
        return (2 * self.latency_s + self.mpi_sync_s
                + 2 * nbytes_each / self.bandwidth_bytes_per_s)

    def rpc_round_trip(self, request_bytes: float,
                       reply_bytes: float) -> float:
        """One unary RPC call."""
        return (2 * self.latency_s + self.rpc_overhead_s
                + (request_bytes + reply_bytes) / self.bandwidth_bytes_per_s)


WIFI = NetworkProfile(
    name="wifi-802.11n",
    latency_s=0.5e-3,
    bandwidth_bytes_per_s=40e6 / 8,   # 40 Mb/s effective
    mpi_sync_s=10e-3,
    rpc_overhead_s=0.4e-3,
)

ETHERNET = NetworkProfile(
    name="gigabit-ethernet",
    latency_s=0.05e-3,
    bandwidth_bytes_per_s=1e9 / 8,
    mpi_sync_s=0.2e-3,
    rpc_overhead_s=0.05e-3,
)
