"""``repro.edge`` — edge device simulation.

Device profiles (Raspberry Pi 3B+, Jetson TX2 CPU/GPU), a WiFi link model,
an analytic FLOPs/bytes profiler over :mod:`repro.nn` models, and the
per-approach metric estimators that regenerate the paper's tables.
"""

from .cost import DTYPE_BYTES, LayerCost, ModelCost, profile_model
from .loadsim import (LoadReport, OpenLoopReport, capacity_sweep,
                      drive_open_loop, poisson_arrivals, simulate_queue,
                      sustainable_rate, uniform_arrivals)
from .device import (DEVICES, JETSON_TX2_CPU, JETSON_TX2_GPU,
                     RASPBERRY_PI_3B, DeviceProfile)
from .metrics import (Metrics, RESULT_BYTES, baseline_metrics,
                      gather_stall_time, moe_grpc_metrics, moe_mpi_metrics,
                      mpi_branch_metrics, mpi_kernel_metrics,
                      mpi_matrix_metrics, teamnet_metrics,
                      teamnet_straggler_metrics)
from .monitor import (LatencySummary, measure_latency, measure_peak_memory,
                      overload_table, resilience_table)
from .network import ETHERNET, WIFI, NetworkProfile

__all__ = [
    "DeviceProfile", "RASPBERRY_PI_3B", "JETSON_TX2_CPU", "JETSON_TX2_GPU",
    "DEVICES", "NetworkProfile", "WIFI", "ETHERNET", "profile_model",
    "ModelCost", "LayerCost", "DTYPE_BYTES", "Metrics", "RESULT_BYTES",
    "baseline_metrics", "teamnet_metrics", "teamnet_straggler_metrics",
    "gather_stall_time", "mpi_matrix_metrics",
    "mpi_kernel_metrics", "mpi_branch_metrics", "moe_grpc_metrics",
    "moe_mpi_metrics", "LatencySummary", "measure_latency",
    "measure_peak_memory", "resilience_table", "overload_table",
    "LoadReport",
    "poisson_arrivals",
    "uniform_arrivals", "simulate_queue", "sustainable_rate",
    "capacity_sweep", "OpenLoopReport", "drive_open_loop",
]
