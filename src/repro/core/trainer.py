"""TeamNet training: Algorithm 1 (TRAIN) and Algorithm 3 (EXPERT_TRAIN).

Per batch: (1) compute the entropy matrix **H** of all experts, (2) run the
dynamic gate (Algorithm 2, :mod:`repro.core.gate`) to assign each sample to
one expert, (3) update each expert by cross-entropy SGD on *its own
partition only* ("No expert learns from all data examples in beta").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import DataLoader, Dataset
from ..nn import Module, SGD, Tensor, clip_grad_norm, cross_entropy
from .entropy import entropy_matrix
from .gate import DynamicGate, GateResult
from .monitor import ConvergenceMonitor

__all__ = ["TeamNetTrainer", "TrainerConfig", "expert_train_step"]


@dataclass
class TrainerConfig:
    """Hyperparameters of Algorithms 1-3.

    ``gain`` is the proportional gain ``a`` of eq. (4); ``epsilon`` the gate
    convergence threshold; ``gate_eta`` the gate's Theta learning rate
    (Algorithm 2's eta); ``lr`` the experts' learning rate (Algorithm 3's
    eta).  ``epochs`` is ``r``, the dataset repetition count of Algorithm 1.
    """

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    gain: float = 0.5
    epsilon: float = 0.05
    gate_eta: float = 0.05
    gate_latent_dim: int = 8
    gate_max_iterations: int = 40
    min_partition: int = 1
    seed: int = 0
    partition_weights: tuple[float, ...] | None = None


def expert_train_step(expert: Module, optimizer: SGD, x: np.ndarray,
                      y: np.ndarray, grad_clip: float = 5.0) -> float:
    """One Algorithm-3 update for a single expert on its partition.

    Returns the cross-entropy loss value.  Gradients are clipped to keep
    deep plain MLPs stable (see tests/nn/test_models.py).
    """
    logits = expert(Tensor(x))
    loss = cross_entropy(logits, y)
    optimizer.zero_grad()
    loss.backward()
    if grad_clip > 0:
        clip_grad_norm(optimizer.params, grad_clip)
    optimizer.step()
    return float(loss.item())


class TeamNetTrainer:
    """Trains K experts with competitive/selective learning (Algorithm 1)."""

    def __init__(self, experts: list[Module], config: TrainerConfig | None = None):
        if len(experts) < 2:
            raise ValueError("TeamNet needs at least 2 experts")
        self.experts = experts
        self.config = config or TrainerConfig()
        cfg = self.config
        weights = (np.asarray(cfg.partition_weights)
                   if cfg.partition_weights is not None else None)
        self.gate = DynamicGate(
            num_experts=len(experts), latent_dim=cfg.gate_latent_dim,
            gain=cfg.gain, epsilon=cfg.epsilon, eta=cfg.gate_eta,
            max_iterations=cfg.gate_max_iterations, seed=cfg.seed,
            set_points=weights)
        self.optimizers = [
            SGD(e.parameters(), lr=cfg.lr, momentum=cfg.momentum,
                weight_decay=cfg.weight_decay)
            for e in experts
        ]
        self.monitor = ConvergenceMonitor(len(experts),
                                          set_points=self.gate.set_points)
        self.rng = np.random.default_rng(cfg.seed)
        self._iteration = 0

    @property
    def num_experts(self) -> int:
        return len(self.experts)

    # ------------------------------------------------------------------ steps
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> GateResult:
        """One Algorithm-1 loop body: gate then per-expert updates."""
        H = entropy_matrix(self.experts, x)
        result = self.gate.train_batch(H)
        for i, (expert, opt) in enumerate(zip(self.experts, self.optimizers)):
            mask = result.assignments == i
            if mask.sum() < self.config.min_partition:
                continue
            expert.train()
            expert_train_step(expert, opt, x[mask], y[mask],
                              self.config.grad_clip)
        self.monitor.record(result.gamma_bar, result.objective)
        self._iteration += 1
        return result

    def train(self, dataset: Dataset, epochs: int | None = None,
              batch_size: int | None = None,
              callback=None) -> ConvergenceMonitor:
        """Algorithm 1: repeat the (reshuffled) dataset for ``r`` epochs.

        ``callback(iteration, gate_result)`` is invoked after every batch if
        given (used by the convergence experiments).
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        batch_size = batch_size if batch_size is not None else cfg.batch_size
        loader = DataLoader(dataset, batch_size, shuffle=True, rng=self.rng)
        for _ in range(epochs):
            for x, y in loader:
                result = self.train_batch(x, y)
                if callback is not None:
                    callback(self._iteration, result)
        return self.monitor
