"""TeamNet training: Algorithm 1 (TRAIN) and Algorithm 3 (EXPERT_TRAIN).

Per batch: (1) compute the entropy matrix **H** of all experts, (2) run the
dynamic gate (Algorithm 2, :mod:`repro.core.gate`) to assign each sample to
one expert, (3) update each expert by cross-entropy SGD on *its own
partition only* ("No expert learns from all data examples in beta").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import DataLoader, Dataset
from ..nn import Module, SGD, Tensor, clip_grad_norm, cross_entropy
from .entropy import entropy_matrix
from .gate import DynamicGate, GateResult
from .monitor import ConvergenceMonitor

__all__ = ["TeamNetTrainer", "TrainerConfig", "expert_train_step"]


@dataclass
class TrainerConfig:
    """Hyperparameters of Algorithms 1-3.

    ``gain`` is the proportional gain ``a`` of eq. (4); ``epsilon`` the gate
    convergence threshold; ``gate_eta`` the gate's Theta learning rate
    (Algorithm 2's eta); ``lr`` the experts' learning rate (Algorithm 3's
    eta).  ``epochs`` is ``r``, the dataset repetition count of Algorithm 1.
    """

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    gain: float = 0.5
    epsilon: float = 0.05
    gate_eta: float = 0.05
    gate_latent_dim: int = 8
    gate_max_iterations: int = 40
    min_partition: int = 1
    seed: int = 0
    partition_weights: tuple[float, ...] | None = None


def expert_train_step(expert: Module, optimizer: SGD, x: np.ndarray,
                      y: np.ndarray, grad_clip: float = 5.0) -> float:
    """One Algorithm-3 update for a single expert on its partition.

    Returns the cross-entropy loss value.  Gradients are clipped to keep
    deep plain MLPs stable (see tests/nn/test_models.py).
    """
    logits = expert(Tensor(x))
    loss = cross_entropy(logits, y)
    optimizer.zero_grad()
    loss.backward()
    if grad_clip > 0:
        clip_grad_norm(optimizer.params, grad_clip)
    optimizer.step()
    return float(loss.item())


class TeamNetTrainer:
    """Trains K experts with competitive/selective learning (Algorithm 1)."""

    def __init__(self, experts: list[Module], config: TrainerConfig | None = None):
        if len(experts) < 2:
            raise ValueError("TeamNet needs at least 2 experts")
        self.experts = experts
        self.config = config or TrainerConfig()
        cfg = self.config
        weights = (np.asarray(cfg.partition_weights)
                   if cfg.partition_weights is not None else None)
        self.gate = DynamicGate(
            num_experts=len(experts), latent_dim=cfg.gate_latent_dim,
            gain=cfg.gain, epsilon=cfg.epsilon, eta=cfg.gate_eta,
            max_iterations=cfg.gate_max_iterations, seed=cfg.seed,
            set_points=weights)
        self.optimizers = [
            SGD(e.parameters(), lr=cfg.lr, momentum=cfg.momentum,
                weight_decay=cfg.weight_decay)
            for e in experts
        ]
        self.monitor = ConvergenceMonitor(len(experts),
                                          set_points=self.gate.set_points)
        self.rng = np.random.default_rng(cfg.seed)
        self._iteration = 0
        self._epoch = 0

    @property
    def num_experts(self) -> int:
        return len(self.experts)

    @property
    def completed_epochs(self) -> int:
        """Full dataset passes finished so far (survives checkpoints)."""
        return self._epoch

    # ------------------------------------------------------------------ steps
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> GateResult:
        """One Algorithm-1 loop body: gate then per-expert updates."""
        H = entropy_matrix(self.experts, x)
        result = self.gate.train_batch(H)
        for i, (expert, opt) in enumerate(zip(self.experts, self.optimizers)):
            mask = result.assignments == i
            if mask.sum() < self.config.min_partition:
                continue
            expert.train()
            expert_train_step(expert, opt, x[mask], y[mask],
                              self.config.grad_clip)
        self.monitor.record(result.gamma_bar, result.objective)
        self._iteration += 1
        return result

    def train(self, dataset: Dataset, epochs: int | None = None,
              batch_size: int | None = None, callback=None,
              checkpoint_store=None, spec=None,
              checkpoint_every: int = 1) -> ConvergenceMonitor:
        """Algorithm 1: repeat the (reshuffled) dataset for ``r`` epochs.

        ``callback(iteration, gate_result)`` is invoked after every batch if
        given (used by the convergence experiments).

        ``checkpoint_store`` (a :class:`repro.store.CheckpointStore`)
        snapshots the *complete* training state every
        ``checkpoint_every`` epochs; ``spec`` (the experts'
        :class:`~repro.nn.ArchitectureSpec`) is required with it so the
        stored experts are self-describing wire archives.  Saving only
        reads state — it never advances an RNG — so a checkpointed run
        follows the exact trajectory of an uncheckpointed one.
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        batch_size = batch_size if batch_size is not None else cfg.batch_size
        if checkpoint_store is not None and spec is None:
            raise ValueError("checkpointing needs the experts' spec "
                             "(pass spec=... alongside checkpoint_store)")
        loader = DataLoader(dataset, batch_size, shuffle=True, rng=self.rng)
        for _ in range(epochs):
            for x, y in loader:
                result = self.train_batch(x, y)
                if callback is not None:
                    callback(self._iteration, result)
            self._epoch += 1
            if (checkpoint_store is not None
                    and self._epoch % max(1, checkpoint_every) == 0):
                checkpoint_store.save(self, spec)
        return self.monitor

    # ---------------------------------------------------------------- resume
    @classmethod
    def resume(cls, checkpoint_store, generation: int | None = None
               ) -> "TeamNetTrainer":
        """Rebuild a trainer from a checkpoint and continue bit-identically.

        Loads the newest valid generation (or ``generation``), rebuilds
        the experts from their stored archives, and restores optimizer
        momentum, gate controller state, RNG streams, monitor history and
        the epoch/step counters — so subsequent :meth:`train` calls
        produce exactly the batches, assignments and updates an
        uninterrupted run would have (the differential testkit asserts
        byte equality of weights and gate counters).
        """
        checkpoint = checkpoint_store.load(generation)
        config_fields = dict(checkpoint.config)
        if config_fields.get("partition_weights") is not None:
            config_fields["partition_weights"] = tuple(
                config_fields["partition_weights"])
        trainer = cls(checkpoint.build_experts(),
                      TrainerConfig(**config_fields))
        checkpoint.apply(trainer)
        return trainer
