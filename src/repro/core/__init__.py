"""``repro.core`` — the TeamNet contribution.

Competitive/selective training (Algorithms 1-3), the dynamic gate with
soft-argmin + meta-estimator, arg-min-gate inference, and the high-level
:class:`TeamNet` API.
"""

from .entropy import (abs_deviation, entropy_from_probs, entropy_matrix,
                      mean_entropy, predictive_entropy,
                      relative_mean_abs_deviation)
from .gate import (DynamicGate, GateNetwork, GateResult, MetaEstimator,
                   assignment_fractions, hard_assignments, kronecker_approx,
                   soft_argmin)
from .inference import (ExpertOutput, TeamInference, argmin_select,
                        expert_forward, majority_vote)
from .monitor import ConvergenceMonitor
from .team import TeamNet
from .trainer import TeamNetTrainer, TrainerConfig, expert_train_step

__all__ = [
    "predictive_entropy", "entropy_from_probs", "entropy_matrix",
    "mean_entropy", "abs_deviation", "relative_mean_abs_deviation",
    "soft_argmin", "kronecker_approx", "GateNetwork", "MetaEstimator",
    "DynamicGate", "GateResult", "hard_assignments", "assignment_fractions",
    "ConvergenceMonitor", "TeamNetTrainer", "TrainerConfig",
    "expert_train_step", "ExpertOutput", "expert_forward", "argmin_select",
    "majority_vote", "TeamInference", "TeamNet",
]
