"""The dynamic gate of Section IV-B (Algorithm 2) and its building blocks.

Pieces, in paper order:

* :func:`soft_argmin` — eq. (5): differentiable relaxation of ``arg min``;
* :class:`MetaEstimator` — eq. (6): a small network that tunes the softness
  ``b`` so the expected distance of the soft assignment to its nearest
  integer stays near ``epsilon`` (neither an over-steep nor an over-gentle
  slope);
* :func:`kronecker_approx` — eq. (7): ``tanh(c * relu(0.5 - |g - i|))``;
* :class:`GateNetwork` — the MLP ``W(z, Theta)`` that parameterizes the
  control variables ``delta = 1 + Delta * W(z, Theta)``;
* :class:`DynamicGate` — Algorithm 2 (``GATE_TRAIN``): descend ``Theta``
  until the batch objective ``J`` of eq. (4) falls below ``epsilon``, then
  return the hard assignments ``arg min_i delta_i * H(x, i)``.

Expert indices are 0-based here (the paper uses 1-based); this only shifts
the integer grid of eq. (5)-(7) and changes nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, Linear, Module, ReLU, Sequential, Tanh, Tensor
from ..nn import functional as F
from .entropy import relative_mean_abs_deviation

__all__ = ["soft_argmin", "kronecker_approx", "GateNetwork", "MetaEstimator",
           "GateResult", "DynamicGate", "hard_assignments",
           "assignment_fractions"]


def soft_argmin(values: Tensor, b: Tensor | float) -> Tensor:
    """Differentiable argmin over the last axis (eq. 5).

    ``soft_argmin(x)_n = sum_i softmax(-b * x_n)_i * i`` — a continuous
    index in [0, K-1] that approaches the hard argmin as ``b`` grows.
    """
    if not isinstance(values, Tensor):
        values = Tensor(values)
    k = values.shape[-1]
    scaled = values * (-1.0) * b
    weights = F.softmax(scaled, axis=-1)
    index = np.arange(k, dtype=float)
    return (weights * Tensor(index)).sum(axis=-1)


def kronecker_approx(soft_index: Tensor, i: int, c: float = 10.0) -> Tensor:
    """Differentiable Kronecker delta ``1[g == i]`` (eq. 7).

    ``tanh(c * relu(0.5 - |g - i|))``: shifting centers the bump at ``i``,
    the ReLU ramps within +-0.5 of it, and tanh with ``c = 10`` flattens the
    bump toward an indicator while keeping gradients alive.
    """
    dist = (soft_index - float(i)).abs()
    return ((0.5 - dist).relu() * c).tanh()


def hard_assignments(H: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """``arg min_i delta_i * H(x, i)`` for each row of H (eq. 1)."""
    return np.argmin(np.asarray(H) * np.asarray(delta)[None, :], axis=1)


def assignment_fractions(assignments: np.ndarray, num_experts: int
                         ) -> np.ndarray:
    """Fraction of the batch assigned to each expert (eq. 2/3 numerators)."""
    counts = np.bincount(np.asarray(assignments), minlength=num_experts)
    return counts / max(1, len(assignments))


class GateNetwork(Module):
    """The MLP ``W(z, Theta)`` of Section IV-B.

    Input: the latent vector ``z ~ U(-1, 1)^N``; output: K values used as
    ``delta = 1 + Delta * W(z, Theta)``.  tanh keeps outputs in (-1, 1) so
    ``delta`` stays positive whenever ``Delta < 1``.
    """

    def __init__(self, latent_dim: int, num_experts: int, hidden: int = 16,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.latent_dim = latent_dim
        self.num_experts = num_experts
        out = Linear(hidden, num_experts, rng=rng)
        # Zero-init the output layer so delta starts at exactly 1 (a pure
        # arg-min gate); corrections grow from there by gradient descent.
        # The output is deliberately unbounded: when one expert is far more
        # certain than the rest, delta must scale arbitrarily to flip
        # assignments (Sec. IV-B gives no bound on W).
        out.weight.data[:] = 0.0
        out.bias.data[:] = 0.0
        self.net = Sequential(
            Linear(latent_dim, hidden, rng=rng), Tanh(), out,
        )

    def forward(self, z: Tensor) -> Tensor:
        return self.net(z)


class MetaEstimator(Module):
    """Estimates the soft-argmin temperature ``b`` (eq. 6).

    A one-hidden-layer network maps batch statistics of the gated entropies
    to a positive scalar ``b`` (softplus output, scaled into a sane range).
    Its training objective (:meth:`loss`) is the paper's eq. (6): drive the
    mean distance between the soft assignment and its nearest integer to a
    small ``epsilon``.
    """

    def __init__(self, hidden: int = 8, b_min: float = 2.0,
                 b_max: float = 50.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.b_min = b_min
        self.b_max = b_max
        self.net = Sequential(
            Linear(3, hidden, rng=rng), Tanh(),
            Linear(hidden, 1, rng=rng),
        )

    @staticmethod
    def _features(gated: np.ndarray) -> np.ndarray:
        """Summary statistics of the delta-weighted entropy matrix."""
        gated = np.asarray(gated)
        spread = gated.max(axis=1) - gated.min(axis=1)
        return np.array([gated.mean(), gated.std(), spread.mean()])

    def forward(self, gated: np.ndarray) -> Tensor:
        feats = Tensor(self._features(gated)[None, :])
        raw = self.net(feats).reshape(1)
        # Softplus, then clamp into [b_min, b_max] smoothly via scaling.
        positive = (raw.exp() + 1.0).log()
        return (positive * (self.b_max / 10.0) + self.b_min).clip(
            self.b_min, self.b_max)

    def loss(self, soft_index: Tensor, epsilon: float,
             num_experts: int) -> Tensor:
        """Eq. (6): | mean_x min_i |G(x) - i| - epsilon |."""
        candidates = [(soft_index - float(i)).abs()
                      for i in range(num_experts)]
        dist = F.stack(candidates, axis=-1).min(axis=-1)
        return (dist.mean() - epsilon).abs()


@dataclass
class GateResult:
    """Output of one ``GATE_TRAIN`` call (Algorithm 2)."""

    assignments: np.ndarray        # hard expert index per sample
    delta: np.ndarray              # final control variables (K,)
    gamma: np.ndarray              # arg-min gate fractions (eq. 2)
    gamma_bar: np.ndarray          # dynamic gate fractions (eq. 3)
    objective: float               # final J (eq. 4)
    iterations: int                # gradient steps taken
    b: float                       # soft-argmin temperature used
    delta_spread: float = 0.0      # the batch diversity statistic Delta


class DynamicGate:
    """Algorithm 2: find the gate ``G-bar`` for one batch.

    Parameters mirror the paper: ``gain`` is the proportional-controller
    gain ``a`` in eq. (4) (0 < a < 1); ``epsilon`` is both the convergence
    threshold on J and the target of the meta-estimator's eq. (6); ``eta``
    is the learning rate for Theta.
    """

    def __init__(self, num_experts: int, latent_dim: int = 8,
                 gain: float = 0.5, epsilon: float = 0.05, eta: float = 0.05,
                 max_iterations: int = 60, c: float = 10.0,
                 meta_lr: float = 0.02, seed: int | None = None,
                 set_points: np.ndarray | None = None):
        if not 0.0 < gain < 1.0:
            raise ValueError("gain a must satisfy 0 < a < 1 (Sec. IV-B)")
        if num_experts < 2:
            raise ValueError("the gate needs at least 2 experts")
        self.num_experts = num_experts
        self.latent_dim = latent_dim
        self.gain = gain
        self.epsilon = epsilon
        self.eta = eta
        self.max_iterations = max_iterations
        self.c = c
        # The paper's objective targets equal shares (1/K).  Its stated
        # future work — adapting to imbalanced data or heterogeneous
        # devices — only changes the set point, so we accept an arbitrary
        # target simplex vector p and drive gamma_bar_i toward
        # p_i - a * (gamma_i - p_i).
        if set_points is None:
            self.set_points = np.full(num_experts, 1.0 / num_experts)
        else:
            set_points = np.asarray(set_points, dtype=float)
            if set_points.shape != (num_experts,):
                raise ValueError(
                    f"set_points must have shape ({num_experts},)")
            if (set_points <= 0).any():
                raise ValueError("set_points must be strictly positive")
            self.set_points = set_points / set_points.sum()
        self.rng = np.random.default_rng(seed)
        # Theta is re-initialized per batch (Algorithm 2 solves a fresh
        # optimization for every beta); starting from the zero-init output
        # layer makes every batch begin at delta = 1, i.e. the arg-min gate,
        # and descend toward the corrected split.  The meta-estimator is
        # persistent: the mapping "entropy statistics -> good b" transfers
        # across batches.
        self.network = GateNetwork(latent_dim, num_experts, rng=self.rng)
        self.meta = MetaEstimator(rng=self.rng)
        self._theta_opt = Adam(self.network.parameters(), lr=eta)
        self._meta_opt = Adam(self.meta.parameters(), lr=meta_lr)

    def _reset_theta(self) -> None:
        self.network = GateNetwork(self.latent_dim, self.num_experts,
                                   rng=self.rng)
        self._theta_opt = Adam(self.network.parameters(), lr=self.eta)

    def _refine_delta(self, H: np.ndarray, delta: np.ndarray,
                      target: np.ndarray, best_j: float,
                      steps: int = 25) -> tuple[np.ndarray, float]:
        """Multiplicative projection of delta onto the eq. (4) target.

        Engineering addition on top of Algorithm 2 (documented in
        DESIGN.md): the soft-argmin gradient solver can stall for K > 2
        because a sample torn between experts 0 and K-1 contributes soft
        mass to the middle indices.  Since gamma-bar depends on delta only
        through hard arg-mins, a few Sinkhorn-style multiplicative updates
        on the hard counts reliably finish the job: overloaded experts get
        their delta (hence their gated uncertainty) scaled up, starving
        them of samples.  The best delta seen anywhere is kept.
        """
        k = len(delta)
        best = delta.copy()
        current = delta.copy()
        for _ in range(steps):
            fractions = assignment_fractions(hard_assignments(H, current), k)
            j = float(np.abs(fractions - target).mean())
            if j < best_j:
                best_j = j
                best = current.copy()
            if best_j <= self.epsilon:
                break
            current = current * ((fractions + 0.05)
                                 / (target + 0.05)) ** 0.25
            current = np.clip(current / current.mean(), 0.02, None)
        return best, best_j

    @staticmethod
    def _quota_assignments(H: np.ndarray, delta: np.ndarray,
                           target: np.ndarray) -> np.ndarray:
        """Exact projection onto the eq. (4) target split.

        Used when neither the gradient solver nor the multiplicative
        refinement reaches J <= epsilon (which happens when expert
        uncertainties are nearly tied and the arg-min boundary is razor
        thin).  Experts get integer quotas proportional to the target;
        samples are assigned greedily, most-confident first, each to its
        lowest gated uncertainty among experts with remaining quota —
        the assignment eq. (4)'s ideal delta would induce.
        """
        n, k = H.shape
        gated = H * delta[None, :]
        quotas = np.floor(target * n).astype(int)
        # Distribute the rounding remainder to the largest fractional parts.
        remainder = n - quotas.sum()
        if remainder > 0:
            extra = np.argsort(-(target * n - quotas))[:remainder]
            quotas[extra] += 1
        assignments = np.empty(n, dtype=int)
        order = np.argsort(gated.min(axis=1))
        for idx in order:
            for expert in np.argsort(gated[idx]):
                if quotas[expert] > 0:
                    assignments[idx] = expert
                    quotas[expert] -= 1
                    break
        return assignments

    # ------------------------------------------------------------------ API
    def train_batch(self, H: np.ndarray) -> GateResult:
        """Run GATE_TRAIN on the entropy matrix ``H`` (N, K)."""
        H = np.asarray(H, dtype=float)
        if H.ndim != 2 or H.shape[1] != self.num_experts:
            raise ValueError(f"H must be (N, {self.num_experts}), got {H.shape}")
        n = H.shape[0]
        k = self.num_experts
        delta_stat = relative_mean_abs_deviation(H)
        # gamma_i: fractions under the plain arg-min gate (eq. 2).
        gamma = assignment_fractions(np.argmin(H, axis=1), k)
        target = self.set_points - self.gain * (gamma - self.set_points)
        # Eq. (4)'s raw target can leave [0, 1] under extreme bias
        # (gamma_i = 1 gives a negative target); project back onto the
        # simplex so the objective stays attainable.
        target = np.clip(target, 0.0, 1.0)
        target = target / target.sum()
        # z is drawn once per batch (Algorithm 2, line 3); Theta restarts
        # from the arg-min gate (see __init__).
        self._reset_theta()
        z = Tensor(self.rng.uniform(-1.0, 1.0, size=(1, self.latent_dim)))
        h_const = Tensor(H)

        b_value = float(self.meta(H).item())
        objective = float("inf")
        iterations = 0
        best_j = float("inf")
        best_delta = np.ones(k)
        for iterations in range(1, self.max_iterations + 1):
            phi = self.network(z).reshape(k)
            # Positivity floor: a non-positive delta would invert the
            # uncertainty ordering instead of reweighting it.
            delta = (phi * delta_stat + 1.0).clip(0.02, None)
            gated = h_const * delta
            # Meta-estimator step: tune b on the current gated entropies.
            b_tensor = self.meta(gated.data)
            soft_idx = soft_argmin(gated, b_tensor)
            meta_loss = self.meta.loss(soft_idx, self.epsilon, k)
            self._meta_opt.zero_grad()
            meta_loss.backward()
            self._meta_opt.step()
            b_value = float(b_tensor.item())
            # Theta step on J (eq. 4) with b frozen.  The ramp anneals the
            # softness: early iterations favour smooth, informative
            # gradients; later ones align the soft split with the hard
            # arg-min that training will actually apply.
            ramp = 0.4 + 0.6 * iterations / self.max_iterations
            soft_idx = soft_argmin(gated, b_value * ramp)
            gamma_bar_terms = [kronecker_approx(soft_idx, i, self.c).mean()
                               for i in range(k)]
            gamma_bar = F.stack(gamma_bar_terms)
            j = (gamma_bar - Tensor(target)).abs().mean()
            # Score this delta by the *hard* assignment miss (what training
            # will actually use), and keep the best seen this batch.
            hard_j = float(np.abs(
                assignment_fractions(hard_assignments(H, delta.data), k)
                - target).mean())
            objective = float(j.item())
            if hard_j < best_j:
                best_j = hard_j
                best_delta = delta.data.copy()
            if objective <= self.epsilon or best_j <= self.epsilon:
                break
            self._theta_opt.zero_grad()
            j.backward()
            self._theta_opt.step()

        best_delta, best_j = self._refine_delta(H, best_delta, target, best_j)
        if best_j <= self.epsilon:
            assignments = hard_assignments(H, best_delta)
        else:
            assignments = self._quota_assignments(H, best_delta, target)
        delta_np = best_delta
        gamma_bar_hard = assignment_fractions(assignments, k)
        return GateResult(assignments=assignments, delta=delta_np,
                          gamma=gamma, gamma_bar=gamma_bar_hard,
                          objective=objective, iterations=iterations,
                          b=b_value, delta_spread=delta_stat)
