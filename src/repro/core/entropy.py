"""Predictive entropy and the batch diversity statistics of Section IV.

Defines (following the paper's notation):

* ``H(y|x, theta_i)`` — predictive entropy of expert i on input x (Sec. IV-A);
* ``E(x)`` — mean entropy across experts;
* ``D(x)`` — mean absolute deviation of the entropies from ``E(x)``;
* ``Delta`` — the batch-average of ``D(x)/E(x)`` ("how diverse the
  uncertainty of different expert models is", Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Tensor, no_grad
from ..nn import functional as F

__all__ = [
    "predictive_entropy", "entropy_from_probs", "entropy_matrix",
    "mean_entropy", "abs_deviation", "relative_mean_abs_deviation",
]

_EPS = 1e-12


def predictive_entropy(logits) -> np.ndarray:
    """Entropy of the softmax distribution for each row of ``logits``.

    Accepts a Tensor or ndarray of shape (N, C); returns an ndarray (N,).
    Computed via log-softmax for numerical stability.

    A row containing NaN/inf logits has no defined distribution; its
    entropy is ``+inf`` — maximally uncertain, so the arg-min gate can
    never select a corrupted expert's output (``np.argmin`` would
    otherwise treat a NaN entropy as the minimum).
    """
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    data = np.asarray(data, dtype=np.result_type(data.dtype, np.float64)
                      if data.dtype.kind != "f" else data.dtype)
    finite = np.isfinite(data).all(axis=-1)
    safe = np.where(finite[..., None], data, 0.0)
    shifted = safe - safe.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_p = shifted - log_z
    p = np.exp(log_p)
    entropy = -(p * log_p).sum(axis=-1)
    return np.where(finite, entropy, np.inf)


def entropy_from_probs(probs: np.ndarray) -> np.ndarray:
    """Entropy of explicit probability rows (N, C).

    Exact at the boundary: a zero probability contributes exactly 0
    (the ``p log p`` limit), not ``0 * log(eps)``; a row containing
    NaN/inf (or a negative "probability") evaluates to ``+inf`` so a
    corrupted distribution can never win the arg-min gate.
    """
    probs = np.asarray(probs, dtype=float)
    valid = (np.isfinite(probs) & (probs >= 0.0)).all(axis=-1)
    safe = np.where(valid[..., None] & (probs > 0.0), probs, 1.0)
    entropy = -(safe * np.log(safe)).sum(axis=-1)
    return np.where(valid, entropy, np.inf)


def entropy_matrix(experts: list[Module], x: np.ndarray) -> np.ndarray:
    """The matrix **H** of Algorithm 2: shape (N, K), entry (n, i) is the
    predictive entropy of Expert i on sample n.

    Experts are evaluated in eval mode under ``no_grad`` (the gate treats
    expert uncertainties as constants).
    """
    xs = Tensor(np.asarray(x))
    columns = []
    with no_grad():
        for expert in experts:
            was_training = expert.training
            expert.eval()
            logits = expert(xs)
            if was_training:
                expert.train()
            columns.append(predictive_entropy(logits))
    return np.stack(columns, axis=1)


def mean_entropy(H: np.ndarray) -> np.ndarray:
    """``E(x)`` per sample: mean entropy over the K experts. Shape (N,)."""
    return np.asarray(H).mean(axis=1)


def abs_deviation(H: np.ndarray) -> np.ndarray:
    """``D(x)`` per sample: mean |H_i - E(x)| over experts. Shape (N,)."""
    H = np.asarray(H)
    e = H.mean(axis=1, keepdims=True)
    return np.abs(H - e).mean(axis=1)


def relative_mean_abs_deviation(H: np.ndarray) -> float:
    """``Delta``: batch average of D(x)/E(x) (Sec. IV-B).

    A small floor on E(x) guards against all-zero entropy rows (an expert
    that is perfectly certain of everything).
    """
    H = np.asarray(H)
    e = np.maximum(mean_entropy(H), _EPS)
    return float((abs_deviation(H) / e).mean())
