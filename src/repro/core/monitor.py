"""Convergence monitoring for TeamNet training.

The paper's Figures 6 and 8 plot, at every training iteration, the
proportion of the batch assigned to each expert, and show convergence to the
set point ``1/K``.  :class:`ConvergenceMonitor` records exactly that series
and answers "has it converged?" queries.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConvergenceMonitor"]


class ConvergenceMonitor:
    """Records per-iteration expert assignment proportions.

    ``set_points`` supports the non-uniform targets of the capacity /
    imbalance-aware extension; by default the target is the paper's 1/K.
    """

    def __init__(self, num_experts: int,
                 set_points: np.ndarray | None = None):
        self.num_experts = num_experts
        if set_points is None:
            self.set_points = np.full(num_experts, 1.0 / num_experts)
        else:
            self.set_points = np.asarray(set_points, dtype=float)
            if self.set_points.shape != (num_experts,):
                raise ValueError(
                    f"set_points must have shape ({num_experts},)")
        self._history: list[np.ndarray] = []
        self._objectives: list[float] = []

    @property
    def set_point(self) -> float:
        """The scalar target proportion 1/K (uniform targets only)."""
        return 1.0 / self.num_experts

    def record(self, proportions: np.ndarray, objective: float = 0.0) -> None:
        proportions = np.asarray(proportions, dtype=float)
        if proportions.shape != (self.num_experts,):
            raise ValueError(
                f"expected {self.num_experts} proportions, got "
                f"{proportions.shape}")
        self._history.append(proportions.copy())
        self._objectives.append(float(objective))

    def __len__(self) -> int:
        return len(self._history)

    def history(self) -> np.ndarray:
        """(iterations, K) array of recorded proportions."""
        if not self._history:
            return np.empty((0, self.num_experts))
        return np.stack(self._history)

    def objectives(self) -> np.ndarray:
        return np.asarray(self._objectives)

    def smoothed(self, window: int = 25) -> np.ndarray:
        """Moving average of the proportion series (for plotting)."""
        hist = self.history()
        if len(hist) == 0 or window <= 1:
            return hist
        kernel = np.ones(min(window, len(hist))) / min(window, len(hist))
        return np.stack([np.convolve(hist[:, i], kernel, mode="valid")
                         for i in range(self.num_experts)], axis=1)

    def max_deviation(self, window: int = 25) -> float:
        """Largest |proportion - 1/K| in the trailing ``window`` records."""
        hist = self.history()
        if len(hist) == 0:
            return float("inf")
        tail = hist[-window:]
        return float(np.abs(tail.mean(axis=0) - self.set_points).max())

    def converged(self, tolerance: float = 0.05, window: int = 25) -> bool:
        """True when the trailing-window mean proportions are all within
        ``tolerance`` of the set point 1/K."""
        if len(self._history) < window:
            return False
        return self.max_deviation(window) <= tolerance

    def convergence_iteration(self, tolerance: float = 0.05,
                              window: int = 25) -> int | None:
        """First iteration from which the monitor stays converged.

        Returns ``None`` if the series never converges.  This is the
        quantity the paper reads off Figures 6 and 8 ("converges at about
        the 12000th iteration").
        """
        hist = self.history()
        if len(hist) < window:
            return None
        means = np.stack([hist[max(0, i - window):i].mean(axis=0)
                          for i in range(window, len(hist) + 1)])
        ok = np.abs(means - self.set_points).max(axis=1) <= tolerance
        # Find the first index after which every window is within tolerance.
        for idx in range(len(ok)):
            if ok[idx:].all():
                return idx + window
        return None
