"""TeamNet inference (Section V).

Each expert predicts and reports its predictive entropy; the ``arg min``
gate selects, per sample, the prediction of the least-uncertain expert
(Figure 4).  A (weighted) majority vote combiner is also provided — the
paper discusses and rejects it ("considering the prediction of 'non-expert'
can be detrimental"), and our ablation bench quantifies that.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from ..nn import Module, Tensor, no_grad
from ..nn import functional as F
from ..nn.executor import compile_expert
from .entropy import predictive_entropy

__all__ = ["ExpertOutput", "argmin_select", "majority_vote",
           "expert_forward", "expert_forward_segments", "TeamInference",
           "ENGINES", "validate_engine", "compiled_expert_for"]

#: Inference engines selectable throughout the serving stack.
#: ``tape``          — the autograd forward (reference semantics).
#: ``compiled``      — traced flat-op executor, float weights
#:                     (byte-identical for linear/relu networks,
#:                     tolerance-equivalent once conv+bn folding kicks in).
#: ``compiled-int8`` — compiled executor with int8 weights and
#:                     dequantize-on-accumulate kernels (tolerance only).
ENGINES = ("tape", "compiled", "compiled-int8")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{ENGINES}")
    return engine


# Compiled executors per expert module, keyed by input signature.  A
# WeakKeyDictionary so redeploying (swapping the module object) drops the
# stale program with the old weights.
_COMPILED: "weakref.WeakKeyDictionary[Module, dict]" = \
    weakref.WeakKeyDictionary()
_COMPILED_LOCK = threading.Lock()


def compiled_expert_for(expert: Module, x: np.ndarray,
                        quantize: bool = False):
    """Fetch (or lazily build) the compiled executor for ``expert`` at
    the input signature of ``x`` (feature shape + dtype; batch is free)."""
    key = (x.shape[1:], x.dtype.str, bool(quantize))
    with _COMPILED_LOCK:
        per_expert = _COMPILED.get(expert)
        if per_expert is None:
            per_expert = {}
            _COMPILED[expert] = per_expert
        compiled = per_expert.get(key)
    if compiled is None:
        compiled = compile_expert(expert, x, quantize=quantize)
        with _COMPILED_LOCK:
            per_expert[key] = compiled
    return compiled


@dataclass
class ExpertOutput:
    """One expert's inference result on a batch."""

    probs: np.ndarray      # (N, C) softmax probabilities
    entropy: np.ndarray    # (N,) predictive entropy

    @property
    def predictions(self) -> np.ndarray:
        return self.probs.argmax(axis=1)


def expert_forward(expert: Module, x: np.ndarray,
                   engine: str = "tape") -> ExpertOutput:
    """Run one expert in eval mode and compute (probs, entropy).

    ``engine`` selects the forward implementation (see :data:`ENGINES`).
    The compiled engines compute softmax/entropy with the exact numpy
    expressions the tape ops use, so for networks the executor replays
    byte-identically the whole ``ExpertOutput`` is byte-identical too.
    """
    if engine != "tape":
        validate_engine(engine)
        x = np.asarray(x)
        compiled = compiled_expert_for(expert, x,
                                       quantize=(engine == "compiled-int8"))
        logits = compiled.run(x)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        return ExpertOutput(probs=probs, entropy=predictive_entropy(logits))
    was_training = expert.training
    expert.eval()
    with no_grad():
        logits = expert(Tensor(np.asarray(x)))
        probs = F.softmax(logits, axis=-1).data
    if was_training:
        expert.train()
    return ExpertOutput(probs=probs, entropy=predictive_entropy(logits))


def expert_forward_segments(expert: Module, x: np.ndarray,
                            segments: list[int] | None,
                            engine: str = "tape") -> ExpertOutput:
    """Run a coalesced batch whose rows belong to ``segments`` requests.

    ``segments`` lists the per-request row counts, in order, summing to
    ``len(x)``.  With 0 or 1 segments this is exactly
    :func:`expert_forward`.  With more, each request's rows are forwarded
    *separately* and the results concatenated — which makes every float
    in the output bit-identical to what the request would have produced
    alone.  (A single fused matmul is not row-wise bit-stable: BLAS may
    pick different reduction blockings for different batch shapes, so
    coalescing requests into one forward perturbs probabilities by ULPs.
    Softmax and entropy are per-row; only the matmul couples rows, and
    this splits it back apart.)
    """
    x = np.asarray(x)
    if segments is None or len(segments) <= 1:
        return expert_forward(expert, x, engine=engine)
    if sum(segments) != len(x):
        raise ValueError(f"segments {segments} do not cover {len(x)} rows")
    outputs = []
    offset = 0
    for rows in segments:
        outputs.append(expert_forward(expert, x[offset:offset + rows],
                                      engine=engine))
        offset += rows
    return ExpertOutput(
        probs=np.concatenate([o.probs for o in outputs], axis=0),
        entropy=np.concatenate([o.entropy for o in outputs], axis=0))


def argmin_select(outputs: list[ExpertOutput]) -> tuple[np.ndarray, np.ndarray]:
    """The arg-min gate of Figure 4.

    Returns ``(predictions, winner)``: per-sample class prediction from the
    least-uncertain expert, and the index of that expert.
    """
    if not outputs:
        raise ValueError("no expert outputs to select from")
    entropies = np.stack([o.entropy for o in outputs], axis=1)  # (N, K)
    winner = entropies.argmin(axis=1)
    preds = np.stack([o.predictions for o in outputs], axis=1)  # (N, K)
    n = preds.shape[0]
    return preds[np.arange(n), winner], winner


def majority_vote(outputs: list[ExpertOutput],
                  weighted: bool = False) -> np.ndarray:
    """Ensemble-style combiner (Sec. V's rejected alternative).

    Unweighted: one vote per expert.  Weighted: votes weighted by
    ``1/(entropy + eps)`` so confident experts count more.
    """
    if not outputs:
        raise ValueError("no expert outputs to vote over")
    num_classes = outputs[0].probs.shape[1]
    n = outputs[0].probs.shape[0]
    tally = np.zeros((n, num_classes))
    for out in outputs:
        weight = 1.0 / (out.entropy + 1e-6) if weighted else np.ones(n)
        tally[np.arange(n), out.predictions] += weight
    return tally.argmax(axis=1)


class TeamInference:
    """Single-process inference over a team of experts (Figure 4).

    This is the *functional* reference implementation: the distributed
    socket runtime (:mod:`repro.distributed.teamnet_runtime`) must produce
    byte-identical selections (asserted in the integration tests).
    """

    def __init__(self, experts: list[Module], engine: str = "tape"):
        if not experts:
            raise ValueError("need at least one expert")
        self.experts = experts
        self.engine = validate_engine(engine)

    def forward_all(self, x: np.ndarray) -> list[ExpertOutput]:
        return [expert_forward(e, x, engine=self.engine)
                for e in self.experts]

    def predict(self, x: np.ndarray) -> np.ndarray:
        preds, _ = argmin_select(self.forward_all(x))
        return preds

    def predict_with_winner(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return argmin_select(self.forward_all(x))

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())
