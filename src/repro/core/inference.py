"""TeamNet inference (Section V).

Each expert predicts and reports its predictive entropy; the ``arg min``
gate selects, per sample, the prediction of the least-uncertain expert
(Figure 4).  A (weighted) majority vote combiner is also provided — the
paper discusses and rejects it ("considering the prediction of 'non-expert'
can be detrimental"), and our ablation bench quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module, Tensor, no_grad
from ..nn import functional as F
from .entropy import predictive_entropy

__all__ = ["ExpertOutput", "argmin_select", "majority_vote",
           "expert_forward", "expert_forward_segments", "TeamInference"]


@dataclass
class ExpertOutput:
    """One expert's inference result on a batch."""

    probs: np.ndarray      # (N, C) softmax probabilities
    entropy: np.ndarray    # (N,) predictive entropy

    @property
    def predictions(self) -> np.ndarray:
        return self.probs.argmax(axis=1)


def expert_forward(expert: Module, x: np.ndarray) -> ExpertOutput:
    """Run one expert in eval mode and compute (probs, entropy)."""
    was_training = expert.training
    expert.eval()
    with no_grad():
        logits = expert(Tensor(np.asarray(x)))
        probs = F.softmax(logits, axis=-1).data
    if was_training:
        expert.train()
    return ExpertOutput(probs=probs, entropy=predictive_entropy(logits))


def expert_forward_segments(expert: Module, x: np.ndarray,
                            segments: list[int] | None) -> ExpertOutput:
    """Run a coalesced batch whose rows belong to ``segments`` requests.

    ``segments`` lists the per-request row counts, in order, summing to
    ``len(x)``.  With 0 or 1 segments this is exactly
    :func:`expert_forward`.  With more, each request's rows are forwarded
    *separately* and the results concatenated — which makes every float
    in the output bit-identical to what the request would have produced
    alone.  (A single fused matmul is not row-wise bit-stable: BLAS may
    pick different reduction blockings for different batch shapes, so
    coalescing requests into one forward perturbs probabilities by ULPs.
    Softmax and entropy are per-row; only the matmul couples rows, and
    this splits it back apart.)
    """
    x = np.asarray(x)
    if segments is None or len(segments) <= 1:
        return expert_forward(expert, x)
    if sum(segments) != len(x):
        raise ValueError(f"segments {segments} do not cover {len(x)} rows")
    outputs = []
    offset = 0
    for rows in segments:
        outputs.append(expert_forward(expert, x[offset:offset + rows]))
        offset += rows
    return ExpertOutput(
        probs=np.concatenate([o.probs for o in outputs], axis=0),
        entropy=np.concatenate([o.entropy for o in outputs], axis=0))


def argmin_select(outputs: list[ExpertOutput]) -> tuple[np.ndarray, np.ndarray]:
    """The arg-min gate of Figure 4.

    Returns ``(predictions, winner)``: per-sample class prediction from the
    least-uncertain expert, and the index of that expert.
    """
    if not outputs:
        raise ValueError("no expert outputs to select from")
    entropies = np.stack([o.entropy for o in outputs], axis=1)  # (N, K)
    winner = entropies.argmin(axis=1)
    preds = np.stack([o.predictions for o in outputs], axis=1)  # (N, K)
    n = preds.shape[0]
    return preds[np.arange(n), winner], winner


def majority_vote(outputs: list[ExpertOutput],
                  weighted: bool = False) -> np.ndarray:
    """Ensemble-style combiner (Sec. V's rejected alternative).

    Unweighted: one vote per expert.  Weighted: votes weighted by
    ``1/(entropy + eps)`` so confident experts count more.
    """
    if not outputs:
        raise ValueError("no expert outputs to vote over")
    num_classes = outputs[0].probs.shape[1]
    n = outputs[0].probs.shape[0]
    tally = np.zeros((n, num_classes))
    for out in outputs:
        weight = 1.0 / (out.entropy + 1e-6) if weighted else np.ones(n)
        tally[np.arange(n), out.predictions] += weight
    return tally.argmax(axis=1)


class TeamInference:
    """Single-process inference over a team of experts (Figure 4).

    This is the *functional* reference implementation: the distributed
    socket runtime (:mod:`repro.distributed.teamnet_runtime`) must produce
    byte-identical selections (asserted in the integration tests).
    """

    def __init__(self, experts: list[Module]):
        if not experts:
            raise ValueError("need at least one expert")
        self.experts = experts

    def forward_all(self, x: np.ndarray) -> list[ExpertOutput]:
        return [expert_forward(e, x) for e in self.experts]

    def predict(self, x: np.ndarray) -> np.ndarray:
        preds, _ = argmin_select(self.forward_all(x))
        return preds

    def predict_with_winner(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return argmin_select(self.forward_all(x))

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())
