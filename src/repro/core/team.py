"""The high-level :class:`TeamNet` API (Section III's "black box").

    >>> team = TeamNet.from_reference(mlp_spec(depth=8), num_experts=4)
    >>> team.fit(train_dataset)
    >>> team.predict(test_images)

``from_reference`` applies the paper's downsizing rule (MLP-8 + K=4 ->
4x MLP-2); ``fit`` runs Algorithm 1; ``predict`` is the arg-min-gate
inference of Figure 4.  ``save``/``load`` round-trip the whole team so the
experts can be deployed to edge devices.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..data import Dataset
from ..nn import (ArchitectureSpec, Module, build_model, downsize,
                  load_model, save_model)
from .inference import TeamInference, argmin_select, expert_forward
from .monitor import ConvergenceMonitor
from .trainer import TeamNetTrainer, TrainerConfig

__all__ = ["TeamNet"]


class TeamNet:
    """A team of specialized experts produced by competitive learning."""

    def __init__(self, experts: list[Module], expert_spec: ArchitectureSpec,
                 config: TrainerConfig | None = None):
        if len(experts) < 2:
            raise ValueError("TeamNet needs at least 2 experts")
        self.experts = experts
        self.expert_spec = expert_spec
        self.config = config or TrainerConfig()
        self.trainer: TeamNetTrainer | None = None
        self._inference = TeamInference(experts)

    # ------------------------------------------------------------- factories
    @classmethod
    def from_reference(cls, reference: ArchitectureSpec, num_experts: int,
                       config: TrainerConfig | None = None,
                       seed: int = 0) -> "TeamNet":
        """Build K experts with the downsized architecture of ``reference``.

        Each expert gets an independently-seeded random initialization
        ("All expert networks are initialized with random weights").
        """
        expert_spec = downsize(reference, num_experts)
        experts = [build_model(expert_spec, np.random.default_rng(seed + i))
                   for i in range(num_experts)]
        return cls(experts, expert_spec, config)

    # ------------------------------------------------------------- training
    @property
    def num_experts(self) -> int:
        return len(self.experts)

    def fit(self, dataset: Dataset, epochs: int | None = None,
            batch_size: int | None = None, callback=None,
            checkpoint_store=None, checkpoint_every: int = 1
            ) -> ConvergenceMonitor:
        """Run Algorithm 1 on ``dataset``; returns the convergence monitor.

        ``checkpoint_store`` (a :class:`repro.store.CheckpointStore`)
        makes training crash-safe: the full trainer state is snapshotted
        atomically every ``checkpoint_every`` epochs, and
        :meth:`TeamNetTrainer.resume` continues from the newest valid
        generation bit-identically.
        """
        if self.trainer is None:
            self.trainer = TeamNetTrainer(self.experts, self.config)
        self.trainer.train(dataset, epochs=epochs, batch_size=batch_size,
                           callback=callback,
                           checkpoint_store=checkpoint_store,
                           spec=self.expert_spec,
                           checkpoint_every=checkpoint_every)
        return self.trainer.monitor

    # ------------------------------------------------------------- inference
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Arg-min-gate predictions for a batch of inputs."""
        return self._inference.predict(x)

    def predict_with_winner(self, x: np.ndarray):
        """Predictions plus the winning expert index per sample."""
        return self._inference.predict_with_winner(x)

    def accuracy(self, dataset: Dataset) -> float:
        """Top-1 accuracy of the team on ``dataset``."""
        return self._inference.accuracy(dataset.images, dataset.labels)

    def expert_accuracy(self, dataset: Dataset) -> list[float]:
        """Per-expert standalone accuracy (each expert answering alone)."""
        return [
            float((expert_forward(e, dataset.images).predictions ==
                   dataset.labels).mean())
            for e in self.experts
        ]

    def certainty_share(self, dataset: Dataset) -> np.ndarray:
        """(K, C) matrix: fraction of each class for which each expert is
        the least-uncertain one — the specialization view of Figure 9."""
        outputs = [expert_forward(e, dataset.images) for e in self.experts]
        _, winner = argmin_select(outputs)
        num_classes = dataset.num_classes
        share = np.zeros((self.num_experts, num_classes))
        for cls in range(num_classes):
            mask = dataset.labels == cls
            if mask.sum() == 0:
                continue
            counts = np.bincount(winner[mask], minlength=self.num_experts)
            share[:, cls] = counts / mask.sum()
        return share

    # ----------------------------------------------------------- persistence
    def save(self, directory: str | Path) -> None:
        """Write each expert as ``expert_<i>.npz`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for i, expert in enumerate(self.experts):
            save_model(expert, self.expert_spec, directory / f"expert_{i}.npz")

    @classmethod
    def load(cls, directory: str | Path) -> "TeamNet":
        """Load a team saved by :meth:`save`."""
        directory = Path(directory)
        paths = sorted(directory.glob("expert_*.npz"),
                       key=lambda p: int(p.stem.split("_")[1]))
        if len(paths) < 2:
            raise FileNotFoundError(f"no team found under {directory}")
        experts = []
        spec = None
        for path in paths:
            model, spec = load_model(path)
            experts.append(model)
        return cls(experts, spec)
