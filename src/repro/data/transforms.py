"""Data augmentation transforms.

Small, composable, rng-explicit augmentations for NCHW image batches —
the standard recipe for the paper's image workloads (random shift + flip
+ noise).  ``DataLoader``-compatible: pass a transform to
``AugmentedDataset`` and every epoch sees fresh perturbations.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = ["Compose", "RandomShift", "RandomHorizontalFlip", "GaussianNoise",
           "RandomErasing", "AugmentedDataset"]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms):
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


class RandomShift:
    """Shift each image by up to ``max_shift`` pixels (zero fill)."""

    def __init__(self, max_shift: int = 2):
        if max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        self.max_shift = max_shift

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        if self.max_shift == 0:
            return images
        out = np.zeros_like(images)
        n, _, h, w = images.shape
        shifts = rng.integers(-self.max_shift, self.max_shift + 1,
                              size=(n, 2))
        for i, (dy, dx) in enumerate(shifts):
            src_y = slice(max(0, -dy), min(h, h - dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_y = slice(max(0, dy), min(h, h + dy))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = images[i, :, src_y, src_x]
        return out


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(images)) < self.p
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class GaussianNoise:
    """Add iid Gaussian pixel noise, clipped back to [0, 1]."""

    def __init__(self, std: float = 0.02):
        if std < 0:
            raise ValueError("std must be >= 0")
        self.std = std

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return images
        noisy = images + rng.normal(0.0, self.std, images.shape)
        return np.clip(noisy, 0.0, 1.0).astype(images.dtype)


class RandomErasing:
    """Zero a random rectangle (cutout regularization)."""

    def __init__(self, p: float = 0.5, max_fraction: float = 0.3):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        self.p = p
        self.max_fraction = max_fraction

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        out = images.copy()
        n, _, h, w = images.shape
        for i in range(n):
            if rng.random() >= self.p:
                continue
            eh = max(1, int(h * rng.uniform(0.1, self.max_fraction)))
            ew = max(1, int(w * rng.uniform(0.1, self.max_fraction)))
            y = rng.integers(0, h - eh + 1)
            x = rng.integers(0, w - ew + 1)
            out[i, :, y:y + eh, x:x + ew] = 0.0
        return out


class AugmentedDataset(Dataset):
    """A Dataset whose image accesses go through ``transform`` lazily.

    The base arrays stay untouched; :class:`repro.data.DataLoader` indexes
    ``images``, so we override attribute access for ``images`` to return a
    freshly-augmented copy each epoch-ish access.  For explicit control use
    :meth:`augmented_batch`.
    """

    def __init__(self, base: Dataset, transform, seed: int = 0):
        super().__init__(base.images, base.labels, base.class_names,
                         dict(base.superclasses), base.name + "+aug")
        self.transform = transform
        self._rng = np.random.default_rng(seed)

    def augmented_batch(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Return (augmented images, labels) for ``indices``."""
        indices = np.asarray(indices)
        images = self.transform(self.images[indices], self._rng)
        return images.astype(self.images.dtype), self.labels[indices]
