"""Synthetic MNIST: a procedural handwritten-digit dataset.

The real MNIST files are not available offline, so we generate a stand-in
with the properties the paper's MNIST experiments rely on:

* 10 balanced classes of 28x28 grayscale images;
* within-class variation (translation, rotation, stroke thickness, elastic
  jitter, pixel noise) so that deeper MLPs achieve measurably higher
  accuracy than shallower ones;
* classes that are visually confusable in a structured way (shared glyph
  segments), so predictive entropy is informative.

Digits are rendered from 7x5 bitmap glyphs, upscaled, then randomly
perturbed per sample.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .dataset import Dataset

__all__ = ["synthetic_mnist", "render_digit", "DIGIT_GLYPHS"]

# 7 rows x 5 cols seed glyphs for digits 0-9 ('#' = ink).
_GLYPH_STRINGS = {
    0: [" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#    ", "#### ", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}


def _glyph_bitmap(digit: int) -> np.ndarray:
    rows = _GLYPH_STRINGS[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])


DIGIT_GLYPHS = {d: _glyph_bitmap(d) for d in range(10)}


def render_digit(digit: int, rng: np.random.Generator,
                 image_size: int = 28) -> np.ndarray:
    """Render one randomly-perturbed digit image in [0, 1].

    Pipeline: upscale the 7x5 glyph, random stroke thickness (grey dilation),
    random rotation / shear-like elastic jitter, random translation, blur and
    additive noise — a cheap approximation of handwriting variability.
    """
    if digit not in DIGIT_GLYPHS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    glyph = DIGIT_GLYPHS[digit]
    # Upscale the glyph into roughly the central 20x20 region (as in MNIST).
    scale_y = rng.uniform(2.3, 2.9)
    scale_x = rng.uniform(2.8, 3.6)
    big = ndimage.zoom(glyph, (scale_y, scale_x), order=1)
    big = np.clip(big, 0.0, 1.0)
    # Random stroke thickness.
    if rng.random() < 0.5:
        big = ndimage.grey_dilation(big, size=(2, 2))
    # Rotation.
    angle = rng.uniform(-12.0, 12.0)
    big = ndimage.rotate(big, angle, reshape=False, order=1, mode="constant")
    # Elastic jitter: displace rows/cols by a smooth random field.
    jitter = rng.uniform(0.5, 1.5)
    dy = ndimage.gaussian_filter(rng.standard_normal(big.shape), 3) * jitter
    dx = ndimage.gaussian_filter(rng.standard_normal(big.shape), 3) * jitter
    yy, xx = np.meshgrid(np.arange(big.shape[0]), np.arange(big.shape[1]),
                         indexing="ij")
    big = ndimage.map_coordinates(big, [yy + dy, xx + dx], order=1,
                                  mode="constant")
    # Paste into the 28x28 canvas with a random offset.
    canvas = np.zeros((image_size, image_size))
    max_y = image_size - big.shape[0]
    max_x = image_size - big.shape[1]
    off_y = rng.integers(max(1, max_y // 2 - 3), max(2, max_y // 2 + 4))
    off_x = rng.integers(max(1, max_x // 2 - 3), max(2, max_x // 2 + 4))
    off_y = int(np.clip(off_y, 0, max(0, max_y)))
    off_x = int(np.clip(off_x, 0, max(0, max_x)))
    h = min(big.shape[0], image_size - off_y)
    w = min(big.shape[1], image_size - off_x)
    canvas[off_y:off_y + h, off_x:off_x + w] = big[:h, :w]
    # Ink intensity variation, blur, noise.
    canvas *= rng.uniform(0.75, 1.0)
    canvas = ndimage.gaussian_filter(canvas, rng.uniform(0.4, 0.8))
    canvas += rng.normal(0.0, 0.03, canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def synthetic_mnist(num_samples: int = 2000, seed: int = 0,
                    image_size: int = 28,
                    rng: np.random.Generator | None = None) -> Dataset:
    """Generate a balanced synthetic-MNIST dataset of ``num_samples`` images.

    Samples are generated class-round-robin so every prefix of the dataset is
    (nearly) balanced, satisfying the paper's balanced-data assumption.

    All randomness flows through one ``Generator``: pass ``rng`` to
    compose with a caller-owned stream, or ``seed`` to own a fresh one
    (``rng`` wins when both are given).
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    images = np.empty((num_samples, 1, image_size, image_size))
    labels = np.empty(num_samples, dtype=np.int64)
    for i in range(num_samples):
        digit = i % 10
        images[i, 0] = render_digit(digit, rng, image_size)
        labels[i] = digit
    perm = rng.permutation(num_samples)
    return Dataset(images[perm], labels[perm],
                   class_names=tuple(str(d) for d in range(10)),
                   name="synthetic-mnist")
