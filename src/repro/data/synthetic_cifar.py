"""Synthetic CIFAR-10: a procedural 10-class colour-image dataset.

The real CIFAR-10 archive is not available offline.  This stand-in keeps the
two properties the paper's CIFAR experiments depend on:

* 10 balanced classes grouped into the two superclasses the specialization
  experiment (Figure 9) observes: **machines** (airplane, automobile, ship,
  truck) share rectilinear silhouettes, smooth surfaces and sky/road
  backgrounds, while **animals** (bird, cat, deer, dog, frog, horse) share
  organic blob silhouettes, high-frequency "fur" texture and natural
  backgrounds;
* enough intra-class variation that deeper Shake-Shake CNNs outperform
  shallower ones.

Every class has a dedicated generator that draws a parameterized object on
a superclass-specific background.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .dataset import Dataset

__all__ = ["synthetic_cifar", "CIFAR_CLASSES", "MACHINE_CLASSES",
           "ANIMAL_CLASSES", "render_cifar_image"]

CIFAR_CLASSES = ("airplane", "automobile", "bird", "cat", "deer",
                 "dog", "frog", "horse", "ship", "truck")
MACHINE_CLASSES = ("airplane", "automobile", "ship", "truck")
ANIMAL_CLASSES = ("bird", "cat", "deer", "dog", "frog", "horse")

_SIZE = 32


def _coords():
    yy, xx = np.meshgrid(np.arange(_SIZE), np.arange(_SIZE), indexing="ij")
    return yy, xx


def _vertical_gradient(top: np.ndarray, bottom: np.ndarray) -> np.ndarray:
    t = np.linspace(0.0, 1.0, _SIZE)[:, None, None]
    column = (1 - t) * top[None, None, :] + t * bottom[None, None, :]
    return np.broadcast_to(column, (_SIZE, _SIZE, 3)).copy()


def _sky_background(rng) -> np.ndarray:
    top = np.array([0.35, 0.55, 0.85]) + rng.normal(0, 0.05, 3)
    bottom = np.array([0.7, 0.8, 0.95]) + rng.normal(0, 0.05, 3)
    return _vertical_gradient(np.clip(top, 0, 1), np.clip(bottom, 0, 1))


def _nature_background(rng) -> np.ndarray:
    top = np.array([0.45, 0.6, 0.45]) + rng.normal(0, 0.06, 3)
    bottom = np.array([0.3, 0.45, 0.2]) + rng.normal(0, 0.06, 3)
    img = _vertical_gradient(np.clip(top, 0, 1), np.clip(bottom, 0, 1))
    # Leafy high-frequency mottling.
    noise = ndimage.gaussian_filter(rng.standard_normal((_SIZE, _SIZE)), 1.2)
    return np.clip(img + 0.08 * noise[:, :, None], 0, 1)


def _rect_mask(cy, cx, h, w, angle_deg, rng) -> np.ndarray:
    yy, xx = _coords()
    theta = np.deg2rad(angle_deg)
    ry = (yy - cy) * np.cos(theta) - (xx - cx) * np.sin(theta)
    rx = (yy - cy) * np.sin(theta) + (xx - cx) * np.cos(theta)
    return (np.abs(ry) <= h / 2) & (np.abs(rx) <= w / 2)


def _ellipse_mask(cy, cx, ry, rx, wobble: float,
                  rng: np.random.Generator) -> np.ndarray:
    yy, xx = _coords()
    field = ((yy - cy) / max(ry, 1e-6))**2 + ((xx - cx) / max(rx, 1e-6))**2
    if wobble > 0:
        bump = ndimage.gaussian_filter(rng.standard_normal((_SIZE, _SIZE)), 3)
        field = field + wobble * bump
    return field <= 1.0


def _paint(img, mask, color, shade: float = 0.0):
    color = np.asarray(color, dtype=float)
    if shade > 0:
        t = np.linspace(1.0, 1.0 - shade, _SIZE)[:, None]
        img[mask] = np.clip(color[None, :] * t[np.nonzero(mask)[0], :], 0, 1)
    else:
        img[mask] = np.clip(color, 0, 1)


def _fur(img, mask, rng, strength: float = 0.12):
    """High-frequency texture shared by all animal classes."""
    noise = rng.standard_normal((_SIZE, _SIZE))
    noise = ndimage.gaussian_filter(noise, 0.6)
    img[mask] = np.clip(img[mask] + strength * noise[mask, None], 0, 1)


def _metal_sheen(img, mask, rng, strength: float = 0.15):
    """Smooth vertical sheen shared by all machine classes."""
    yy, _ = _coords()
    sheen = np.sin(yy / _SIZE * np.pi * rng.uniform(1.0, 2.0))
    img[mask] = np.clip(img[mask] + strength * sheen[mask, None], 0, 1)


# --------------------------------------------------------------------------
# Machine classes
# --------------------------------------------------------------------------
def _draw_airplane(img, rng):
    cy = rng.uniform(12, 18)
    cx = rng.uniform(13, 19)
    body_color = np.array([0.85, 0.86, 0.9]) + rng.normal(0, 0.04, 3)
    angle = rng.uniform(-10, 10)
    body = _rect_mask(cy, cx, rng.uniform(3, 5), rng.uniform(18, 24), angle, rng)
    wings = _rect_mask(cy, cx, rng.uniform(12, 16), rng.uniform(3, 5),
                       angle + rng.uniform(-6, 6), rng)
    tail = _rect_mask(cy - 2, cx + rng.uniform(7, 10), rng.uniform(4, 6),
                      rng.uniform(2, 3), angle, rng)
    obj = body | wings | tail
    _paint(img, obj, body_color)
    _metal_sheen(img, obj, rng)
    return obj


def _draw_automobile(img, rng):
    cy = rng.uniform(18, 22)
    cx = rng.uniform(14, 18)
    color = rng.uniform(0.2, 0.9, 3)
    body = _rect_mask(cy, cx, rng.uniform(6, 8), rng.uniform(16, 22), 0, rng)
    cabin = _rect_mask(cy - rng.uniform(4, 5), cx, rng.uniform(4, 5),
                       rng.uniform(8, 12), 0, rng)
    obj = body | cabin
    _paint(img, obj, color)
    _metal_sheen(img, obj, rng)
    for dx in (-6, 6):
        wheel = _ellipse_mask(cy + 4, cx + dx + rng.uniform(-1, 1),
                              rng.uniform(2, 3), rng.uniform(2, 3), 0.0, rng)
        _paint(img, wheel, [0.08, 0.08, 0.08])
        obj = obj | wheel
    return obj


def _draw_ship(img, rng):
    # Water lower half.
    yy, _ = _coords()
    water_line = int(rng.uniform(18, 24))
    water = yy >= water_line
    _paint(img, water, np.clip(np.array([0.1, 0.25, 0.5])
                               + rng.normal(0, 0.03, 3), 0, 1))
    cy = water_line - rng.uniform(2, 4)
    cx = rng.uniform(13, 19)
    hull = _rect_mask(cy, cx, rng.uniform(4, 6), rng.uniform(16, 22), 0, rng)
    hull &= ~(yy > water_line + 2)
    deck = _rect_mask(cy - rng.uniform(4, 6), cx + rng.uniform(-3, 3),
                      rng.uniform(3, 5), rng.uniform(6, 10), 0, rng)
    obj = hull | deck
    _paint(img, obj, rng.uniform(0.3, 0.8, 3))
    _metal_sheen(img, obj, rng)
    return obj | water


def _draw_truck(img, rng):
    cy = rng.uniform(17, 21)
    cx = rng.uniform(14, 18)
    cab_color = rng.uniform(0.3, 0.9, 3)
    box_color = rng.uniform(0.3, 0.9, 3)
    box = _rect_mask(cy - 2, cx + rng.uniform(2, 4), rng.uniform(9, 12),
                     rng.uniform(13, 17), 0, rng)
    cab = _rect_mask(cy, cx - rng.uniform(8, 10), rng.uniform(6, 8),
                     rng.uniform(5, 7), 0, rng)
    obj = box | cab
    _paint(img, box, box_color)
    _paint(img, cab, cab_color)
    _metal_sheen(img, obj, rng)
    for dx in (-9, -1, 7):
        wheel = _ellipse_mask(cy + 5, cx + dx, rng.uniform(2, 3),
                              rng.uniform(2, 3), 0.0, rng)
        _paint(img, wheel, [0.08, 0.08, 0.08])
        obj = obj | wheel
    return obj


# --------------------------------------------------------------------------
# Animal classes
# --------------------------------------------------------------------------
def _animal_body(img, rng, color, ry, rx, head_dx, head_r, wobble=0.25):
    cy = rng.uniform(16, 20)
    cx = rng.uniform(14, 18)
    body = _ellipse_mask(cy, cx, ry, rx, wobble, rng)
    head = _ellipse_mask(cy - rng.uniform(4, 7), cx + head_dx, head_r,
                         head_r * rng.uniform(0.9, 1.2), wobble * 0.6, rng)
    obj = body | head
    _paint(img, obj, color, shade=0.2)
    _fur(img, obj, rng)
    return obj, cy, cx


def _draw_bird(img, rng):
    color = np.array([rng.uniform(0.4, 0.9), rng.uniform(0.3, 0.7),
                      rng.uniform(0.2, 0.6)])
    obj, cy, cx = _animal_body(img, rng, color, rng.uniform(4, 6),
                               rng.uniform(6, 8), rng.uniform(4, 6),
                               rng.uniform(2.5, 3.5))
    wing = _ellipse_mask(cy, cx - rng.uniform(1, 3), rng.uniform(2, 3),
                         rng.uniform(4, 6), 0.3, rng)
    _paint(img, wing, color * 0.7)
    _fur(img, wing, rng)
    return obj | wing


def _draw_cat(img, rng):
    color = np.array([0.5, 0.4, 0.3]) + rng.normal(0, 0.08, 3)
    obj, cy, cx = _animal_body(img, rng, np.clip(color, 0, 1),
                               rng.uniform(5, 7), rng.uniform(7, 9),
                               rng.uniform(3, 5), rng.uniform(3, 4))
    # Pointy ears: two small triangles above the head.
    for dx in (2, 6):
        ear = _rect_mask(cy - 10, cx + dx, rng.uniform(2, 3),
                         rng.uniform(1.5, 2.5), rng.uniform(30, 60), rng)
        _paint(img, ear, np.clip(color, 0, 1))
    return obj


def _draw_deer(img, rng):
    color = np.array([0.55, 0.38, 0.2]) + rng.normal(0, 0.05, 3)
    obj, cy, cx = _animal_body(img, rng, np.clip(color, 0, 1),
                               rng.uniform(5, 6), rng.uniform(6, 8),
                               rng.uniform(4, 6), rng.uniform(2.5, 3.5))
    # Legs.
    for dx in (-4, -1, 2, 5):
        leg = _rect_mask(cy + 7, cx + dx, rng.uniform(5, 7), 1.5, 0, rng)
        _paint(img, leg, np.clip(color * 0.8, 0, 1))
        obj = obj | leg
    # Antlers.
    antler = _rect_mask(cy - 12, cx + rng.uniform(4, 6), rng.uniform(3, 5),
                        1.2, rng.uniform(-30, 30), rng)
    _paint(img, antler, [0.4, 0.3, 0.2])
    return obj


def _draw_dog(img, rng):
    color = np.array([rng.uniform(0.3, 0.7), rng.uniform(0.25, 0.5),
                      rng.uniform(0.15, 0.35)])
    obj, cy, cx = _animal_body(img, rng, color, rng.uniform(5, 7),
                               rng.uniform(8, 10), rng.uniform(5, 7),
                               rng.uniform(3, 4))
    # Floppy ears + tail.
    ear = _ellipse_mask(cy - 8, cx + rng.uniform(6, 8), rng.uniform(2, 3),
                        1.5, 0.2, rng)
    tail = _rect_mask(cy - 2, cx - rng.uniform(8, 10), rng.uniform(1.5, 2.5),
                      rng.uniform(4, 6), rng.uniform(-45, -15), rng)
    _paint(img, ear, color * 0.75)
    _paint(img, tail, color)
    _fur(img, tail, rng)
    return obj | tail


def _draw_frog(img, rng):
    color = np.array([0.2, rng.uniform(0.5, 0.8), 0.2]) + rng.normal(0, 0.04, 3)
    obj, cy, cx = _animal_body(img, rng, np.clip(color, 0, 1),
                               rng.uniform(4, 6), rng.uniform(6, 8),
                               rng.uniform(0, 2), rng.uniform(3, 4),
                               wobble=0.35)
    # Bulging eyes.
    for dx in (-2, 3):
        eye = _ellipse_mask(cy - 8, cx + dx, 1.5, 1.5, 0.0, rng)
        _paint(img, eye, [0.9, 0.9, 0.3])
    return obj


def _draw_horse(img, rng):
    color = np.array([0.4, 0.26, 0.15]) + rng.normal(0, 0.05, 3)
    obj, cy, cx = _animal_body(img, rng, np.clip(color, 0, 1),
                               rng.uniform(5, 6), rng.uniform(8, 10),
                               rng.uniform(6, 8), rng.uniform(2.5, 3.5))
    # Long neck and legs.
    neck = _rect_mask(cy - 5, cx + rng.uniform(4, 6), rng.uniform(6, 8),
                      rng.uniform(2.5, 3.5), rng.uniform(20, 40), rng)
    _paint(img, neck, np.clip(color, 0, 1))
    _fur(img, neck, rng)
    for dx in (-5, -2, 2, 5):
        leg = _rect_mask(cy + 8, cx + dx, rng.uniform(6, 8), 1.5, 0, rng)
        _paint(img, leg, np.clip(color * 0.85, 0, 1))
        obj = obj | leg
    return obj | neck


_MACHINE_DRAWERS = {
    "airplane": _draw_airplane,
    "automobile": _draw_automobile,
    "ship": _draw_ship,
    "truck": _draw_truck,
}
_ANIMAL_DRAWERS = {
    "bird": _draw_bird,
    "cat": _draw_cat,
    "deer": _draw_deer,
    "dog": _draw_dog,
    "frog": _draw_frog,
    "horse": _draw_horse,
}


def render_cifar_image(class_name: str, rng: np.random.Generator) -> np.ndarray:
    """Render one (3, 32, 32) image of ``class_name`` in [0, 1]."""
    if class_name in _MACHINE_DRAWERS:
        img = _sky_background(rng)
        _MACHINE_DRAWERS[class_name](img, rng)
    elif class_name in _ANIMAL_DRAWERS:
        img = _nature_background(rng)
        _ANIMAL_DRAWERS[class_name](img, rng)
    else:
        raise ValueError(f"unknown class {class_name!r}")
    img = img + rng.normal(0.0, 0.02, img.shape)
    img = ndimage.gaussian_filter(img, sigma=(0.4, 0.4, 0.0))
    return np.clip(img, 0.0, 1.0).transpose(2, 0, 1)


def synthetic_cifar(num_samples: int = 2000, seed: int = 0,
                    rng: np.random.Generator | None = None) -> Dataset:
    """Generate a balanced synthetic CIFAR-10 dataset.

    Class order matches the canonical CIFAR-10 label order.  The returned
    dataset carries the machine/animal superclass map used by the
    specialization experiment (Figure 9).

    All randomness flows through one ``Generator``: pass ``rng`` to
    compose with a caller-owned stream, or ``seed`` to own a fresh one
    (``rng`` wins when both are given).
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    images = np.empty((num_samples, 3, _SIZE, _SIZE))
    labels = np.empty(num_samples, dtype=np.int64)
    for i in range(num_samples):
        label = i % 10
        images[i] = render_cifar_image(CIFAR_CLASSES[label], rng)
        labels[i] = label
    perm = rng.permutation(num_samples)
    superclasses = {
        "machines": tuple(CIFAR_CLASSES.index(c) for c in MACHINE_CLASSES),
        "animals": tuple(CIFAR_CLASSES.index(c) for c in ANIMAL_CLASSES),
    }
    return Dataset(images[perm], labels[perm], class_names=CIFAR_CLASSES,
                   superclasses=superclasses, name="synthetic-cifar10")
