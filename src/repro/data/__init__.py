"""``repro.data`` — datasets and loaders.

Synthetic stand-ins for MNIST and CIFAR-10 (see DESIGN.md, "Environment
substitutions") plus the Dataset/DataLoader plumbing used by every trainer.
"""

from .dataset import DataLoader, Dataset, train_test_split
from .synthetic_cifar import (ANIMAL_CLASSES, CIFAR_CLASSES, MACHINE_CLASSES,
                              render_cifar_image, synthetic_cifar)
from .synthetic_mnist import DIGIT_GLYPHS, render_digit, synthetic_mnist
from .transforms import (AugmentedDataset, Compose, GaussianNoise,
                         RandomErasing, RandomHorizontalFlip, RandomShift)

__all__ = [
    "Dataset", "DataLoader", "train_test_split", "synthetic_mnist",
    "render_digit", "DIGIT_GLYPHS", "synthetic_cifar", "render_cifar_image",
    "CIFAR_CLASSES", "MACHINE_CLASSES", "ANIMAL_CLASSES", "Compose",
    "RandomShift", "RandomHorizontalFlip", "GaussianNoise", "RandomErasing",
    "AugmentedDataset",
]
