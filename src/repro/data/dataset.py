"""Dataset containers and loaders.

A :class:`Dataset` is an in-memory (images, labels) pair with class metadata;
:class:`DataLoader` reshuffles each epoch and yields equal-sized batches,
exactly the regime Algorithm 1 assumes ("the training data is first
reshuffled and then divided into equal-sized batches").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "DataLoader", "train_test_split"]


@dataclass
class Dataset:
    """In-memory labelled image dataset (NCHW float images)."""

    images: np.ndarray
    labels: np.ndarray
    class_names: tuple[str, ...] = ()
    superclasses: dict[str, tuple[int, ...]] = field(default_factory=dict)
    name: str = "dataset"

    def __post_init__(self):
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels length mismatch")
        if not self.class_names:
            n = int(self.labels.max()) + 1 if len(self.labels) else 0
            self.class_names = tuple(str(i) for i in range(n))

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.images.shape[1:]

    def subset(self, indices) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(self.images[indices], self.labels[indices],
                       self.class_names, dict(self.superclasses), self.name)

    def class_counts(self) -> np.ndarray:
        """Per-class example counts (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def is_balanced(self, tolerance: float = 0.1) -> bool:
        """True if every class count is within ``tolerance`` of the mean."""
        counts = self.class_counts()
        mean = counts.mean()
        if mean == 0:
            return True
        return bool(np.all(np.abs(counts - mean) <= tolerance * mean))


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     rng: np.random.Generator | None = None
                     ) -> tuple[Dataset, Dataset]:
    """Random stratified-ish split into train and test datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    perm = rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    return dataset.subset(perm[:cut]), dataset.subset(perm[cut:])


class DataLoader:
    """Epoch iterator producing shuffled, equal-sized batches.

    Batches that would be smaller than ``batch_size`` at the tail of an epoch
    are dropped when ``drop_last`` is True (the default, matching the
    equal-sized-batch assumption of the paper's training loop).
    """

    def __init__(self, dataset: Dataset, batch_size: int,
                 shuffle: bool = True, drop_last: bool = True,
                 rng: np.random.Generator | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
