"""Atomic, checksummed artifact store (the durability substrate).

Edge nodes lose power mid-write; a checkpoint that can be half-written
is worse than no checkpoint at all, because a resuming trainer would
silently continue from garbage.  :class:`ArtifactStore` makes the only
two promises durability needs:

* **A generation is all-or-nothing.**  Entries are staged into a hidden
  directory (each file written temp-file + fsync + rename), the manifest
  — carrying a schema version and the SHA-256 of every entry — is
  written last, and the whole staging directory is committed with one
  ``os.replace``.  A crash at any point leaves either the previous
  state or the new generation, never a torn mix; leftover staging
  directories are invisible to readers and reclaimed by the next write.
* **Corruption is detected, never returned.**  Reading a generation
  re-hashes every entry against its manifest; any mismatch (torn file,
  bit rot, truncation) raises :class:`CorruptGenerationError` naming
  the offending entry, and :meth:`ArtifactStore.read_generation` falls
  back to the newest generation that *does* validate.

The store retains the newest ``retain`` generations so that fallback
always has somewhere to land.  ``hook`` is a fault-injection point for
the crash testkit (:mod:`repro.testkit.crash`): it is called with a
named event after each durability step, and a hook that raises
simulates a crash exactly there.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

__all__ = ["ArtifactStore", "StoreError", "CorruptGenerationError",
           "NoValidGenerationError", "atomic_write_bytes", "fsync_dir",
           "SCHEMA_VERSION"]

SCHEMA_VERSION = 1
_GEN_PREFIX = "gen-"
_STAGING_PREFIX = ".staging-"
MANIFEST_NAME = "manifest.json"


class StoreError(RuntimeError):
    """Base class for artifact-store failures."""


class CorruptGenerationError(StoreError):
    """A generation failed validation (missing/torn/mismatched entry)."""


class NoValidGenerationError(StoreError):
    """No generation in the store passes validation."""


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed child survives power loss."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, blob: bytes,
                       fsync: bool = True) -> None:
    """Write ``blob`` to ``path`` atomically: temp file in the same
    directory, flush + fsync, then ``os.replace``.  Readers never see a
    partial file — they see the old content or the new, nothing between.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class ArtifactStore:
    """N-generation atomic store of named byte entries under ``root``.

    Layout::

        root/
          gen-000001/
            manifest.json        # schema, meta, {name: {sha256, bytes}}
            <entry files...>
          gen-000002/
            ...

    ``retain`` bounds how many generations are kept (oldest pruned after
    each successful commit); ``fsync`` can be disabled for tests on slow
    filesystems; ``hook(event)`` is the crash-injection point (see module
    docstring) — events are ``"entry:<name>"``, ``"manifest"``,
    ``"commit"`` and ``"prune"``.
    """

    def __init__(self, root: str | Path, retain: int = 3, fsync: bool = True,
                 hook=None):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.fsync = fsync
        self.hook = hook

    # ------------------------------------------------------------- helpers
    def _emit(self, event: str) -> None:
        if self.hook is not None:
            self.hook(event)

    def _gen_dir(self, generation: int) -> Path:
        return self.root / f"{_GEN_PREFIX}{generation:06d}"

    def generations(self) -> list[int]:
        """All committed generation ids, oldest first (validity unchecked)."""
        out = []
        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith(_GEN_PREFIX):
                try:
                    out.append(int(child.name[len(_GEN_PREFIX):]))
                except ValueError:
                    continue
        return sorted(out)

    # -------------------------------------------------------------- writing
    def write_generation(self, entries: dict[str, bytes],
                         meta: dict | None = None) -> int:
        """Commit ``entries`` as a new generation; returns its id.

        The commit point is the final directory rename: a crash anywhere
        before it leaves the store exactly as it was.
        """
        if not entries:
            raise ValueError("a generation needs at least one entry")
        for name in entries:
            if (not name or name != os.path.basename(name)
                    or name.startswith(".") or name == MANIFEST_NAME):
                raise ValueError(f"invalid entry name {name!r}")
        known = self.generations()
        generation = (known[-1] + 1) if known else 1
        staging = self.root / f"{_STAGING_PREFIX}{generation:06d}"
        if staging.exists():
            shutil.rmtree(staging)  # leftover from a crashed writer
        staging.mkdir()
        manifest_entries = {}
        for name, blob in entries.items():
            atomic_write_bytes(staging / name, blob, fsync=self.fsync)
            manifest_entries[name] = {"sha256": _sha256(blob),
                                      "bytes": len(blob)}
            self._emit(f"entry:{name}")
        manifest = {"schema": SCHEMA_VERSION, "generation": generation,
                    "meta": meta or {}, "entries": manifest_entries}
        atomic_write_bytes(staging / MANIFEST_NAME,
                           json.dumps(manifest, indent=2).encode("utf-8"),
                           fsync=self.fsync)
        self._emit("manifest")
        os.replace(staging, self._gen_dir(generation))
        if self.fsync:
            fsync_dir(self.root)
        self._emit("commit")
        self._prune()
        self._emit("prune")
        return generation

    def _prune(self) -> None:
        for generation in self.generations()[:-self.retain]:
            shutil.rmtree(self._gen_dir(generation), ignore_errors=True)

    # -------------------------------------------------------------- reading
    def validate(self, generation: int) -> dict:
        """Fully re-verify one generation; returns its parsed manifest.

        Raises :class:`CorruptGenerationError` naming what failed: a
        missing or unparsable manifest, an unsupported schema, or an
        entry that is missing, truncated, or checksum-mismatched.
        """
        directory = self._gen_dir(generation)
        manifest_path = directory / MANIFEST_NAME
        if not directory.is_dir():
            raise CorruptGenerationError(
                f"generation {generation}: directory missing")
        if not manifest_path.is_file():
            raise CorruptGenerationError(
                f"generation {generation}: manifest missing")
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorruptGenerationError(
                f"generation {generation}: unreadable manifest: {exc}") \
                from exc
        if not isinstance(manifest, dict) \
                or manifest.get("schema") != SCHEMA_VERSION:
            raise CorruptGenerationError(
                f"generation {generation}: unsupported manifest schema "
                f"{manifest.get('schema')!r} (expected {SCHEMA_VERSION})")
        entries = manifest.get("entries")
        if not isinstance(entries, dict) or not entries:
            raise CorruptGenerationError(
                f"generation {generation}: manifest has no entries")
        for name, info in entries.items():
            path = directory / name
            if not path.is_file():
                raise CorruptGenerationError(
                    f"generation {generation}: entry {name!r} missing")
            blob = path.read_bytes()
            if len(blob) != info.get("bytes"):
                raise CorruptGenerationError(
                    f"generation {generation}: entry {name!r} truncated "
                    f"({len(blob)} bytes, manifest says {info.get('bytes')})")
            if _sha256(blob) != info.get("sha256"):
                raise CorruptGenerationError(
                    f"generation {generation}: entry {name!r} failed its "
                    "SHA-256 checksum")
        return manifest

    def latest_valid(self) -> int | None:
        """Newest generation that passes :meth:`validate`, or ``None``."""
        for generation in reversed(self.generations()):
            try:
                self.validate(generation)
            except CorruptGenerationError:
                continue
            return generation
        return None

    def read_generation(self, generation: int | None = None
                        ) -> tuple[dict[str, bytes], dict]:
        """Read (and verify) a generation's entries and manifest.

        With ``generation=None``, reads the newest valid one, skipping —
        never returning — corrupt generations; raises
        :class:`NoValidGenerationError` (listing every corruption found)
        when nothing validates.
        """
        if generation is not None:
            manifest = self.validate(generation)
            directory = self._gen_dir(generation)
            return ({name: (directory / name).read_bytes()
                     for name in manifest["entries"]}, manifest)
        reasons = []
        for candidate in reversed(self.generations()):
            try:
                return self.read_generation(candidate)
            except CorruptGenerationError as exc:
                reasons.append(str(exc))
        raise NoValidGenerationError(
            "no valid generation in " + str(self.root)
            + ("; " + "; ".join(reasons) if reasons else " (store is empty)"))

    def read_entry(self, name: str, generation: int | None = None) -> bytes:
        """One verified entry from a generation (default: newest valid)."""
        entries, _ = self.read_generation(generation)
        if name not in entries:
            raise KeyError(f"no entry {name!r} in generation")
        return entries[name]

    # ------------------------------------------------------------- tooling
    def inspect(self) -> list[dict]:
        """Per-generation validity report (for the CLI and the soaks)."""
        report = []
        for generation in self.generations():
            record: dict = {"generation": generation}
            try:
                manifest = self.validate(generation)
            except CorruptGenerationError as exc:
                record.update(valid=False, error=str(exc))
            else:
                record.update(
                    valid=True, error=None, meta=manifest.get("meta", {}),
                    entries={name: info["bytes"]
                             for name, info in manifest["entries"].items()})
            report.append(record)
        return report
