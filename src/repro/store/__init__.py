"""``repro.store`` — durable state for TeamNet (checkpoints + artifacts).

The serving path survives node loss (PR 3's resilience control plane);
this package makes *state* survive it too:

* :mod:`~repro.store.artifact` — an atomic, checksummed,
  generation-retaining artifact store (temp-file + fsync + rename,
  per-entry SHA-256, schema-versioned JSON manifest, fallback to the
  last valid generation);
* :mod:`~repro.store.checkpoint` — :class:`TeamCheckpoint` /
  :class:`CheckpointStore`: full training-state snapshots (expert
  weights, optimizer momentum, gate controller state, RNG streams,
  epoch/step) that ``TeamNetTrainer.resume`` continues from
  bit-identically, and whose expert archives double as the wire blobs
  ``TeamNetMaster.redeploy`` pushes to standby workers.
"""

from .artifact import (ArtifactStore, CorruptGenerationError,
                       NoValidGenerationError, StoreError,
                       atomic_write_bytes, fsync_dir)
from .checkpoint import (CheckpointStore, RosterSnapshot, TeamCheckpoint,
                         expert_entry_name)

__all__ = [
    "ArtifactStore", "StoreError", "CorruptGenerationError",
    "NoValidGenerationError", "atomic_write_bytes", "fsync_dir",
    "CheckpointStore", "TeamCheckpoint", "RosterSnapshot",
    "expert_entry_name",
]
