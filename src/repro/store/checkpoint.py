"""Crash-safe team checkpoints with bit-exact training resume.

A :class:`TeamCheckpoint` captures *everything* Algorithm 1 threads from
one batch to the next — not just expert weights:

* every expert's state dict (stored as the self-describing
  :func:`repro.nn.serialize.model_to_bytes` archive, so the same blob is
  reusable as the wire format when the master redeploys an expert);
* every expert optimizer's momentum velocity;
* the gate's persistent state: the meta-estimator network, its Adam
  moments/step, and the gate RNG (``Theta`` restarts per batch from that
  RNG, so the RNG state *is* the gate-network state between batches);
* the trainer RNG (drives the per-epoch shuffles) and the convergence
  monitor's recorded partition history;
* the epoch / iteration counters and the full :class:`TrainerConfig`.

Restoring all of it makes ``TeamNetTrainer.resume`` continue training
**bit-identically** to a run that never stopped — the property the
testkit's differential checker asserts.  Persistence goes through
:class:`~repro.store.artifact.ArtifactStore`, so a checkpoint interrupted
by a crash is never visible and a corrupted one is rejected by checksum
with automatic fallback to the previous generation.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict, dataclass

import numpy as np

from ..nn.models import ArchitectureSpec
from ..nn.serialize import (model_from_bytes, model_to_bytes,
                            weights_fingerprint)
from .artifact import ArtifactStore

__all__ = ["CheckpointStore", "TeamCheckpoint", "RosterSnapshot",
           "expert_entry_name"]

CHECKPOINT_SCHEMA = 1
_STATE_ENTRY = "training_state.json"


def expert_entry_name(index: int) -> str:
    """Store entry holding expert ``index``'s model archive."""
    return f"expert_{index}.model.npz"


def _arrays_to_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _bytes_to_arrays(blob: bytes) -> dict[str, np.ndarray]:
    with np.load(io.BytesIO(blob)) as archive:
        return {name: archive[name] for name in archive.files}


def _indexed(arrays: list[np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    return {f"{prefix}{i:04d}": np.asarray(a) for i, a in enumerate(arrays)}

def _unindexed(arrays: dict[str, np.ndarray], prefix: str
               ) -> list[np.ndarray]:
    keys = sorted(k for k in arrays if k.startswith(prefix))
    return [np.array(arrays[k], copy=True) for k in keys]


@dataclass
class TeamCheckpoint:
    """One fully-validated generation of training state, decoded."""

    generation: int
    epoch: int
    step: int
    spec: ArchitectureSpec
    config: dict
    expert_blobs: list[bytes]
    optimizer_velocities: list[list[np.ndarray]]
    gate_meta_state: dict[str, np.ndarray]
    gate_meta_moments: tuple[list[np.ndarray], list[np.ndarray], int]
    gate_rng_state: dict
    trainer_rng_state: dict
    set_points: np.ndarray
    monitor_history: np.ndarray
    monitor_objectives: np.ndarray

    @property
    def num_experts(self) -> int:
        return len(self.expert_blobs)

    def build_experts(self) -> list:
        """Reconstruct every expert model from its stored archive."""
        return [model_from_bytes(blob)[0] for blob in self.expert_blobs]

    def apply(self, trainer) -> None:
        """Load this checkpoint into ``trainer`` (in place, bit-exact).

        After this call the trainer is indistinguishable from one that
        trained straight through to ``epoch``/``step`` without stopping.
        """
        if len(trainer.experts) != self.num_experts:
            raise ValueError(
                f"checkpoint holds {self.num_experts} experts, trainer has "
                f"{len(trainer.experts)}")
        for expert, blob in zip(trainer.experts, self.expert_blobs):
            model, _ = model_from_bytes(blob)
            expert.load_state_dict(model.state_dict())
        for optimizer, velocities in zip(trainer.optimizers,
                                         self.optimizer_velocities):
            if len(velocities) != len(optimizer._velocity):
                raise ValueError("optimizer velocity count mismatch")
            optimizer._velocity = [np.array(v, copy=True)
                                   for v in velocities]
        gate = trainer.gate
        gate.meta.load_state_dict(self.gate_meta_state)
        m, v, t = self.gate_meta_moments
        gate._meta_opt._m = [np.array(a, copy=True) for a in m]
        gate._meta_opt._v = [np.array(a, copy=True) for a in v]
        gate._meta_opt._t = t
        gate.rng.bit_generator.state = self.gate_rng_state
        gate.set_points = np.array(self.set_points, copy=True)
        trainer.rng.bit_generator.state = self.trainer_rng_state
        trainer.monitor.set_points = np.array(self.set_points, copy=True)
        trainer.monitor._history = [row.copy()
                                    for row in self.monitor_history]
        trainer.monitor._objectives = [float(o)
                                       for o in self.monitor_objectives]
        trainer._iteration = self.step
        trainer._epoch = self.epoch


@dataclass(frozen=True)
class RosterSnapshot:
    """The persisted leadership/roster state a standby hydrates from."""

    roster: dict[int, tuple[str, int]]
    epoch: int
    leader: str | None
    version: int


class CheckpointStore:
    """Durable home for :class:`TeamCheckpoint` generations.

    A thin typed layer over :class:`~repro.store.artifact.ArtifactStore`:
    ``save`` snapshots a live ``TeamNetTrainer`` atomically, ``load``
    returns the newest checkpoint that validates (falling back past any
    corrupted generation), and ``expert_bytes`` hands the master a
    ready-to-push wire blob for :meth:`TeamNetMaster.redeploy`.

    The master-failover layer additionally persists the live *worker
    roster* here (``save_roster``/``load_roster``) in a nested store
    under ``root/roster`` — nested because roster deltas churn on every
    redeploy and must not rotate training checkpoints out of retention.
    """

    def __init__(self, root, retain: int = 3, fsync: bool = True, hook=None):
        self.store = ArtifactStore(root, retain=retain, fsync=fsync,
                                   hook=hook)
        self._roster_store: ArtifactStore | None = None
        self._canary_store: ArtifactStore | None = None

    @property
    def root(self):
        return self.store.root

    # --------------------------------------------------------------- save
    def save(self, trainer, spec: ArchitectureSpec,
             meta: dict | None = None, quantize_experts: bool = False) -> int:
        """Snapshot ``trainer`` as a new generation; returns its id.

        Only *reads* trainer state (no RNG draws), so saving never
        perturbs the training trajectory.  ``quantize_experts`` stores
        expert archives as int8 (~4x smaller); it defaults to off because
        quantization is lossy and bit-exact training resume depends on
        float archives.
        """
        entries: dict[str, bytes] = {}
        for i, expert in enumerate(trainer.experts):
            entries[expert_entry_name(i)] = model_to_bytes(
                expert, spec, quantize=quantize_experts)
        for i, optimizer in enumerate(trainer.optimizers):
            entries[f"optim_{i}.npz"] = _arrays_to_bytes(
                _indexed(optimizer._velocity, "velocity_"))
        gate = trainer.gate
        entries["gate_meta.npz"] = _arrays_to_bytes(gate.meta.state_dict())
        entries["gate_meta_opt.npz"] = _arrays_to_bytes({
            **_indexed(gate._meta_opt._m, "m_"),
            **_indexed(gate._meta_opt._v, "v_")})
        entries["monitor.npz"] = _arrays_to_bytes({
            "history": trainer.monitor.history(),
            "objectives": trainer.monitor.objectives(),
            "set_points": np.asarray(gate.set_points)})
        state = {
            "schema": CHECKPOINT_SCHEMA,
            "epoch": trainer.completed_epochs,
            "step": trainer._iteration,
            "num_experts": len(trainer.experts),
            "spec": asdict(spec),
            "config": asdict(trainer.config),
            "trainer_rng": trainer.rng.bit_generator.state,
            "gate_rng": gate.rng.bit_generator.state,
            "meta_opt_t": gate._meta_opt._t,
        }
        entries[_STATE_ENTRY] = json.dumps(state, indent=2).encode("utf-8")
        store_meta = {"kind": "team-checkpoint",
                      "epoch": state["epoch"], "step": state["step"],
                      "num_experts": state["num_experts"],
                      "spec_name": spec.name}
        if meta:
            store_meta.update(meta)
        return self.store.write_generation(entries, store_meta)

    def save_experts(self, experts, spec: ArchitectureSpec,
                     meta: dict | None = None,
                     quantize_experts: bool = False) -> int:
        """Snapshot a serving team's expert archives (no trainer state).

        Serving/integrity deployments have experts but no live trainer;
        this writes a generation holding only the ``expert_<i>.model.npz``
        entries, which is everything :meth:`expert_bytes` /
        :meth:`load_expert` / :meth:`expert_fingerprint` (and therefore
        redeploy and worker restart) need.  ``load()`` does *not* apply
        to such generations — there is no training state to decode.
        """
        entries = {expert_entry_name(i): model_to_bytes(
                       expert, spec, quantize=quantize_experts)
                   for i, expert in enumerate(experts)}
        store_meta = {"kind": "expert-team", "num_experts": len(entries),
                      "spec_name": spec.name}
        if meta:
            store_meta.update(meta)
        return self.store.write_generation(entries, store_meta)

    # --------------------------------------------------------------- load
    def load(self, generation: int | None = None) -> TeamCheckpoint:
        """Decode a checkpoint (default: newest valid generation)."""
        entries, manifest = self.store.read_generation(generation)
        state = json.loads(entries[_STATE_ENTRY].decode("utf-8"))
        if state.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {state.get('schema')!r}")
        num_experts = state["num_experts"]
        spec_fields = dict(state["spec"])
        spec_fields["in_shape"] = tuple(spec_fields["in_shape"])
        meta_opt = _bytes_to_arrays(entries["gate_meta_opt.npz"])
        monitor = _bytes_to_arrays(entries["monitor.npz"])
        return TeamCheckpoint(
            generation=manifest["generation"],
            epoch=state["epoch"], step=state["step"],
            spec=ArchitectureSpec(**spec_fields),
            config=state["config"],
            expert_blobs=[entries[expert_entry_name(i)]
                          for i in range(num_experts)],
            optimizer_velocities=[
                _unindexed(_bytes_to_arrays(entries[f"optim_{i}.npz"]),
                           "velocity_")
                for i in range(num_experts)],
            gate_meta_state=_bytes_to_arrays(entries["gate_meta.npz"]),
            gate_meta_moments=(_unindexed(meta_opt, "m_"),
                               _unindexed(meta_opt, "v_"),
                               int(state["meta_opt_t"])),
            gate_rng_state=state["gate_rng"],
            trainer_rng_state=state["trainer_rng"],
            set_points=np.array(monitor["set_points"], copy=True),
            monitor_history=np.array(monitor["history"], copy=True),
            monitor_objectives=np.array(monitor["objectives"], copy=True))

    def restore(self, trainer, generation: int | None = None
                ) -> TeamCheckpoint:
        """Load a checkpoint into an existing trainer; returns it."""
        checkpoint = self.load(generation)
        checkpoint.apply(trainer)
        return checkpoint

    # ------------------------------------------------------------ redeploy
    def expert_bytes(self, index: int,
                     generation: int | None = None) -> bytes:
        """The stored wire archive of expert ``index`` (0 = master's)."""
        return self.store.read_entry(expert_entry_name(index), generation)

    def load_expert(self, index: int, generation: int | None = None):
        """Rebuild one expert model from the store: ``(model, spec)``."""
        return model_from_bytes(self.expert_bytes(index, generation))

    def expert_fingerprint(self, index: int,
                           generation: int | None = None) -> str:
        """The weights fingerprint of a stored expert — the model
        version the integrity layer expects that slot's replies to be
        stamped with (:mod:`repro.distributed.integrity`).  Computed
        from the archive's decoded state, so it matches what a worker
        that loaded this archive will stamp."""
        model, _ = self.load_expert(index, generation)
        return weights_fingerprint(model)

    # -------------------------------------------------------------- canary
    def _canaries(self) -> ArtifactStore:
        if self._canary_store is None:
            self._canary_store = ArtifactStore(
                self.store.root / "canary", retain=self.store.retain,
                fsync=self.store.fsync)
        return self._canary_store

    def save_canary(self, canaries) -> int:
        """Persist a :class:`~repro.distributed.integrity.CanarySet`
        (inputs + per-expert golden outputs) next to the checkpoints.

        Nested under ``root/canary`` like the roster store: canary sets
        are rewritten at every deploy and must not rotate training
        checkpoints out of retention.  Returns the generation id.
        """
        return self._canaries().write_generation(
            {"canary.npz": _arrays_to_bytes(canaries.to_arrays())},
            {"kind": "canary-set",
             "num_experts": len(canaries.golden),
             "rows": int(np.asarray(canaries.x).shape[0])})

    def load_canary(self):
        """The newest valid persisted canary set, or None if none exists."""
        from ..distributed.integrity import CanarySet  # local: avoid cycle
        from .artifact import NoValidGenerationError
        try:
            entries, _ = self._canaries().read_generation()
        except NoValidGenerationError:
            return None
        return CanarySet.from_arrays(_bytes_to_arrays(entries["canary.npz"]))

    # -------------------------------------------------------------- roster
    def _rosters(self) -> ArtifactStore:
        if self._roster_store is None:
            self._roster_store = ArtifactStore(
                self.store.root / "roster", retain=self.store.retain,
                fsync=self.store.fsync)
        return self._roster_store

    def save_roster(self, roster: dict[int, tuple[str, int]],
                    epoch: int = 0, leader: str | None = None) -> int:
        """Persist the live worker roster (+ leadership identity) as a
        new roster generation; returns its id, which doubles as the
        snapshot ``version`` (generations are monotonic)."""
        rosters = self._rosters()
        known = rosters.generations()
        version = (known[-1] + 1) if known else 1  # = the new generation id
        blob = json.dumps({
            "roster": [[int(i), str(h), int(p)]
                       for i, (h, p) in sorted(roster.items())],
            "epoch": int(epoch), "leader": leader, "version": version,
        }, indent=2).encode("utf-8")
        return rosters.write_generation(
            {"roster.json": blob},
            {"kind": "team-roster", "epoch": int(epoch), "leader": leader})

    def load_roster(self) -> RosterSnapshot | None:
        """The newest valid persisted roster, or None if none exists."""
        from .artifact import NoValidGenerationError  # local: avoid cycle
        try:
            entries, _ = self._rosters().read_generation()
        except NoValidGenerationError:
            return None
        state = json.loads(entries["roster.json"].decode("utf-8"))
        return RosterSnapshot(
            roster={int(i): (str(h), int(p))
                    for i, h, p in state.get("roster", [])},
            epoch=int(state.get("epoch", 0)),
            leader=state.get("leader"),
            version=int(state.get("version", 0)))

    # ------------------------------------------------------------- tooling
    def generations(self) -> list[int]:
        return self.store.generations()

    def latest_valid(self) -> int | None:
        return self.store.latest_valid()

    def inspect(self) -> list[dict]:
        return self.store.inspect()
