"""Benchmark: regenerate Figure 6 (gate convergence on MNIST)."""

from conftest import BENCH_SCALE

import numpy as np

from repro.experiments import fig6


def test_bench_fig6(benchmark, workloads):
    workloads.teamnet("mnist", 2)
    workloads.teamnet("mnist", 4)
    result = benchmark(lambda: fig6.run(BENCH_SCALE))
    print()
    print(result.render())
    for k in (2, 4):
        series = result.series[f"proportions_k{k}"]
        # The proportion of data each expert receives converges to 1/K.
        tail = series[-max(10, len(series) // 8):].mean(axis=0)
        assert np.abs(tail - 1.0 / k).max() < 0.1, (
            f"K={k} proportions did not converge to set point: {tail}")
