"""Benchmark: regenerate Table I (MNIST on Jetson TX2, both profiles)."""

from conftest import BENCH_SCALE

from repro.experiments import table1


def test_bench_table1(benchmark, workloads):
    for k in (2, 4):
        workloads.teamnet("mnist", k)
        workloads.moe("mnist", k)
    workloads.baseline("mnist")
    result = benchmark(lambda: table1.run(BENCH_SCALE))
    print()
    print(result.render())

    a = result.tables["table1a"]
    lat = dict(zip(zip(a.column("Approach"), a.column("Nodes")),
                   a.column("Inference Time (ms)")))
    # Paper shapes, Table I(a): TeamNet fastest, MPI an order slower.
    assert lat[("TeamNet", 2)] < lat[("Baseline", 1)]
    assert lat[("MPI-Matrix", 2)] > 10 * lat[("Baseline", 1)]
    assert lat[("MPI-Matrix", 4)] > lat[("MPI-Matrix", 2)]
    assert lat[("SG-MoE-M", 2)] > lat[("SG-MoE-G", 2)]

    b = result.tables["table1b"]
    lat_gpu = dict(zip(zip(b.column("Approach"), b.column("Nodes")),
                       b.column("Inference Time (ms)")))
    # Table I(b): on the GPU the baseline beats every distributed scheme.
    assert lat_gpu[("Baseline", 1)] < lat_gpu[("TeamNet", 2)]
    assert lat_gpu[("Baseline", 1)] < lat_gpu[("SG-MoE-G", 2)]
