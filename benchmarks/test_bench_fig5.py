"""Benchmark: regenerate Figure 5 (MNIST on Raspberry Pi 3B+).

Training artifacts are primed once (session fixture); the benchmarked
callable is the table regeneration itself.  The printed table mirrors the
paper's figure; EXPERIMENTS.md records paper-vs-measured.
"""

from conftest import BENCH_SCALE

from repro.experiments import fig5


def test_bench_fig5(benchmark, workloads):
    workloads.teamnet("mnist", 2)  # prime trained artifacts
    workloads.teamnet("mnist", 4)
    workloads.baseline("mnist")
    result = benchmark(lambda: fig5.run(BENCH_SCALE))
    print()
    print(result.render())
    table = result.tables["fig5"]
    latency = table.column("Inference Time (ms)")
    assert latency[0] > latency[1] > latency[2]
    accuracy = table.column("Accuracy (%)")
    # "The accuracy is generally not compromised."
    assert min(accuracy[1:]) > accuracy[0] - 10.0
