"""Benchmark: regenerate Figure 7 (CIFAR-10 on Jetson TX2 CPU/GPU)."""

from conftest import BENCH_SCALE

from repro.experiments import fig7


def test_bench_fig7(benchmark, workloads):
    workloads.baseline("cifar")
    workloads.teamnet("cifar", 2)
    workloads.teamnet("cifar", 4)
    result = benchmark(lambda: fig7.run(BENCH_SCALE))
    print()
    print(result.render())

    cpu = result.tables["fig7a"].column("Inference Time (ms)")
    # Figure 7(a): monotone speedup; TeamNet roughly halves the baseline.
    assert cpu[0] > cpu[1] > cpu[2]
    assert cpu[1] < 0.6 * cpu[0]

    gpu = result.tables["fig7b"].column("Inference Time (ms)")
    # Figure 7(b): two experts is the fastest point on the GPU.
    assert gpu[1] == min(gpu)
