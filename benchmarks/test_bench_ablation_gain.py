"""Ablation: the proportional-controller gain ``a`` of eq. (4).

DESIGN.md calls out ``a`` as the key control constant.  We simulate the
richer-gets-richer dynamic of Appendix A — an expert's certainty grows
with the amount of data it has received — and sweep the gain, reporting
how fast the assignment proportions reach the set point 1/K.
"""

import numpy as np

from repro.core.gate import DynamicGate
from repro.experiments import ResultTable


def simulate_training(gain: float, num_experts: int = 2, batches: int = 30,
                      batch_size: int = 64, seed: int = 0):
    """Return per-batch max deviation from 1/K under a data-driven
    certainty model: H_i ~ 1 / (1 + data_share_i)."""
    rng = np.random.default_rng(seed)
    gate = DynamicGate(num_experts=num_experts, gain=gain, seed=seed,
                       max_iterations=20)
    received = np.ones(num_experts)
    received[0] = 4.0  # a head start: the bias the controller must undo
    deviations = []
    for _ in range(batches):
        certainty = 1.0 / (1.0 + received / received.sum() * num_experts)
        H = np.clip(certainty[None, :]
                    + rng.normal(0, 0.08, (batch_size, num_experts)),
                    1e-3, None)
        result = gate.train_batch(H)
        received += result.gamma_bar * batch_size
        deviations.append(
            float(np.abs(received / received.sum()
                         - 1.0 / num_experts).max()))
    return np.asarray(deviations)


def test_bench_ablation_gain(benchmark):
    gains = (0.1, 0.3, 0.5, 0.9)

    def sweep():
        return {gain: simulate_training(gain) for gain in gains}

    results = benchmark(sweep)
    table = ResultTable(
        "Ablation: controller gain a (cumulative-share deviation from 1/K)",
        ["a", "deviation@10 batches", "deviation@30 batches"])
    for gain in gains:
        dev = results[gain]
        table.add_row(gain, dev[9], dev[-1])
    print()
    print(table.render())
    # Any 0 < a < 1 must eventually shrink the bias (Appendix A).
    for gain in gains:
        assert results[gain][-1] < results[gain][0]
    # Larger gain corrects faster early on.
    assert results[0.9][9] <= results[0.1][9] + 0.02
