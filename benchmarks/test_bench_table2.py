"""Benchmark: regenerate Table II (CIFAR-10 on Jetson TX2, both profiles)."""

from conftest import BENCH_SCALE

from repro.experiments import table2


def test_bench_table2(benchmark, workloads):
    workloads.baseline("cifar")
    for k in (2, 4):
        workloads.teamnet("cifar", k)
        workloads.moe("cifar", k)
    result = benchmark(lambda: table2.run(BENCH_SCALE))
    print()
    print(result.render())

    a = result.tables["table2a"]
    lat = dict(zip(zip(a.column("Approach"), a.column("Nodes")),
                   a.column("Inference Time (ms)")))
    # Table II(a) shapes.
    assert lat[("TeamNet", 2)] < lat[("Baseline", 1)]
    assert lat[("TeamNet", 4)] < lat[("TeamNet", 2)]
    assert lat[("MPI-Branch", 2)] > lat[("Baseline", 1)]
    assert lat[("MPI-Kernel", 2)] > lat[("MPI-Branch", 2)]
    assert lat[("MPI-Kernel", 4)] > lat[("MPI-Kernel", 2)]

    b = result.tables["table2b"]
    lat_gpu = dict(zip(zip(b.column("Approach"), b.column("Nodes")),
                       b.column("Inference Time (ms)")))
    # Table II(b): with the big CIFAR model, TeamNet-2 still wins on GPU.
    assert lat_gpu[("TeamNet", 2)] < lat_gpu[("Baseline", 1)]
