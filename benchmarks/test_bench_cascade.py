"""Extension bench: TeamNet (horizontal) vs early-exit cascade (vertical).

The two edge-inference philosophies the paper contrasts in related work,
on the same MNIST workload: K peer experts with arg-min-entropy selection
versus one network with entropy-thresholded exits escalating device ->
edge.  Reports accuracy and the analytic expected latency of each on
Raspberry-Pi-class hardware.
"""

import numpy as np

from repro.cascade import (CascadeConfig, CascadeTrainer, EarlyExitMLP,
                           expected_cascade_latency)
from repro.data import synthetic_mnist, train_test_split
from repro.edge import (RASPBERRY_PI_3B, WIFI, profile_model,
                        teamnet_metrics)
from repro.experiments import ResultTable
from repro.nn import build_model, downsize, mlp_spec


def test_bench_cascade(benchmark):
    dataset = synthetic_mnist(1600, seed=6)
    train, test = train_test_split(dataset, 0.2, np.random.default_rng(6))

    def run():
        # Early-exit cascade: 3 stages, calibrated so ~60% answer at the
        # device exit.
        model = EarlyExitMLP(784, 10, stage_widths=(64, 64, 64),
                             rng=np.random.default_rng(6))
        trainer = CascadeTrainer(model, CascadeConfig(
            epochs=8, batch_size=64, lr=2e-3, seed=6))
        trainer.train(train)
        thresholds = model.calibrate_thresholds(train.images,
                                                target_exit_fraction=0.6)
        decision = model.predict_with_exits(test.images, thresholds)
        cascade_acc = float((decision.predictions == test.labels).mean())
        escalation = float((decision.exits > 0).mean())
        # TeamNet on the same budget.
        from repro.core import TeamNet, TrainerConfig
        team = TeamNet.from_reference(
            mlp_spec(8, width=64), 2,
            config=TrainerConfig(epochs=8, batch_size=64, seed=6), seed=6)
        team.fit(train)
        return cascade_acc, escalation, team.accuracy(test)

    cascade_acc, escalation, team_acc = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # Analytic deployment-scale latencies on the RPi over WiFi.
    rng = np.random.default_rng(0)
    ref = mlp_spec(8, width=2048)
    expert_spec = downsize(ref, 2)
    expert_cost = profile_model(build_model(expert_spec, rng),
                                (expert_spec.in_features,))
    team_latency = teamnet_metrics(expert_cost, 2, RASPBERRY_PI_3B,
                                   WIFI).latency_s
    # Cascade: device runs 1/3 of the deep model; escalation ships a
    # 2048-float hidden vector and runs the remaining 2/3 remotely.
    full_cost = profile_model(build_model(ref, rng), (ref.in_features,))
    local = RASPBERRY_PI_3B.compute_time(full_cost.total_flops / 3,
                                         full_cost.num_ops // 3)
    remote = RASPBERRY_PI_3B.compute_time(2 * full_cost.total_flops / 3,
                                          2 * full_cost.num_ops // 3)
    cascade_latency = expected_cascade_latency(local, remote, escalation,
                                               2048 * 4, WIFI)

    table = ResultTable(
        "TeamNet vs early-exit cascade (MNIST, Raspberry Pi over WiFi)",
        ["approach", "accuracy (%)", "expected latency (ms)", "notes"])
    table.add_row("TeamNet 2x MLP-4", 100 * team_acc, team_latency * 1e3,
                  "all experts always run")
    table.add_row("Cascade 3-exit", 100 * cascade_acc,
                  cascade_latency * 1e3,
                  f"{escalation:.0%} of samples escalate")
    print()
    print(table.render())

    assert cascade_acc > 0.6 and team_acc > 0.6
    assert 0.0 < escalation < 1.0
