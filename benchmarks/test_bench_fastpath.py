"""Fast-path bench: compiled (and int8) single-expert forward vs the tape.

The tentpole claim behind :mod:`repro.nn.executor`: for the small experts
TeamNet deploys, the autograd tape's per-op bookkeeping (Function
instances, Tensor wrappers, fresh allocations) rivals the arithmetic, so
tracing the expert once and replaying a fused flat op list into reused
buffers must lift single-expert ``expert_forward`` throughput by **at
least 3x** at serving batch sizes — for both the float compiled engine
and the int8 dequantize-on-accumulate engine.

The run measures end-to-end ``expert_forward`` (forward + softmax +
entropy, the unit the serving stack calls) across a batch-size sweep and
writes the trajectory plus the per-op before/after profiler tables to
``BENCH_fastpath.json`` (override the path with ``FASTPATH_BENCH_JSON``,
the per-point duration with ``FASTPATH_BENCH_DURATION``).
"""

import json
import os
import time

import numpy as np

from repro.core.inference import compiled_expert_for, expert_forward
from repro.nn import MLP
from repro.nn.profiler import OpProfiler

DURATION = float(os.environ.get("FASTPATH_BENCH_DURATION", "0.2"))
OUT_PATH = os.environ.get("FASTPATH_BENCH_JSON", "BENCH_fastpath.json")
BATCH_SIZES = (1, 2, 4, 8, 16)
#: the paper's MLP-d expert family, at deployment depth/width
DEPTH, WIDTH, IN_FEATURES, CLASSES = 8, 32, 64, 10
PROFILE_CALLS = 300
REPEATS = 3


def _rate(fn, duration: float) -> float:
    """Median calls/second of ``fn`` over ``REPEATS`` windows of
    ``duration`` (after one warmup) — medians shrug off the scheduler
    hiccups a single window would bake into the speedup ratio."""
    fn()
    rates = []
    for _ in range(REPEATS):
        done = 0
        start = time.perf_counter()
        while time.perf_counter() - start < duration:
            fn()
            done += 1
        rates.append(done / (time.perf_counter() - start))
    return float(np.median(rates))


def _profile(fn, calls: int) -> OpProfiler:
    with OpProfiler() as prof:
        for _ in range(calls):
            fn()
    return prof


def test_bench_fastpath():
    rng = np.random.default_rng(33)
    expert = MLP(IN_FEATURES, CLASSES, depth=DEPTH, width=WIDTH, rng=rng)
    expert.eval()
    x1 = rng.standard_normal((1, IN_FEATURES))

    # Compile both programs up front so the sweep times steady state.
    compiled = compiled_expert_for(expert, x1)
    compiled_int8 = compiled_expert_for(expert, x1, quantize=True)

    # Per-op before/after: where the tape spends its time vs what remains
    # once the trace is fused into flat kernels.
    tape_prof = _profile(lambda: expert_forward(expert, x1), PROFILE_CALLS)
    comp_prof = _profile(lambda: expert_forward(expert, x1,
                                                engine="compiled"),
                         PROFILE_CALLS)
    print(f"\n--- tape, per op ({PROFILE_CALLS} calls, batch 1) ---")
    print(tape_prof.report(top=12))
    print(f"--- compiled, per op ({PROFILE_CALLS} calls, batch 1) ---")
    print(comp_prof.report(top=12))

    trajectory = []
    for n in BATCH_SIZES:
        x = rng.standard_normal((n, IN_FEATURES))
        tape_rps = _rate(lambda: expert_forward(expert, x), DURATION)
        comp_rps = _rate(lambda: expert_forward(expert, x,
                                                engine="compiled"), DURATION)
        int8_rps = _rate(lambda: expert_forward(expert, x,
                                                engine="compiled-int8"),
                         DURATION)
        trajectory.append({
            "batch": n,
            "tape_rps": tape_rps,
            "compiled_rps": comp_rps,
            "int8_rps": int8_rps,
            "compiled_speedup": comp_rps / tape_rps,
            "int8_speedup": int8_rps / tape_rps,
        })
        print(f"batch {n:>3}: tape {tape_rps:8.0f}/s  "
              f"compiled {comp_rps:8.0f}/s ({comp_rps / tape_rps:.2f}x)  "
              f"int8 {int8_rps:8.0f}/s ({int8_rps / tape_rps:.2f}x)")

    best_compiled = max(row["compiled_speedup"] for row in trajectory)
    best_int8 = max(row["int8_speedup"] for row in trajectory)
    payload = {
        "expert": {"family": "mlp", "depth": DEPTH, "width": WIDTH,
                   "in_features": IN_FEATURES, "classes": CLASSES},
        "duration_per_point_s": DURATION,
        "best_compiled_speedup": best_compiled,
        "best_int8_speedup": best_int8,
        "compiled_ops": compiled.op_names,
        "int8_ops": compiled_int8.op_names,
        "tape_profile": {name: {"calls": s.calls, "forward_s": s.forward_s}
                         for name, s in tape_prof.stats.items()},
        "compiled_profile": {name: {"calls": s.calls,
                                    "forward_s": s.forward_s}
                             for name, s in comp_prof.stats.items()},
        "trajectory": trajectory,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"best compiled {best_compiled:.2f}x, best int8 {best_int8:.2f}x "
          f"-> {OUT_PATH}")

    # The profiler saw the fused kernels, not the tape ops, on the
    # compiled run — i.e. the fast path was actually exercised.
    assert any(name.startswith("Linear") for name in comp_prof.stats)
    assert "MatMul" in tape_prof.stats
    assert "MatMul" not in comp_prof.stats
    # The acceptance bar: >= 3x single-expert forward throughput for the
    # compiled float engine and the int8 engine at some serving batch.
    assert best_compiled >= 3.0, (
        f"compiled best {best_compiled:.2f}x, needs >= 3x over tape")
    assert best_int8 >= 3.0, (
        f"int8 best {best_int8:.2f}x, needs >= 3x over tape")
