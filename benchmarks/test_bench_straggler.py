"""Extension bench: straggler tolerance of the concurrent gather.

The runtime reads all worker replies simultaneously under one
per-inference deadline, so stragglers cost the master at most one
``reply_timeout`` total.  This bench prices that against the serialized
gather pathology (per-peer budgets that stack) on the paper's edge
profiles, and cross-checks the analytic stall against a real localhost
team with an injected straggler.
"""

import time

import numpy as np

from repro.core import TeamInference
from repro.distributed import deploy_local_team
from repro.edge import (JETSON_TX2_CPU, WIFI, gather_stall_time,
                        profile_model, teamnet_metrics,
                        teamnet_straggler_metrics)
from repro.experiments import ResultTable
from repro.nn import MLP, Module, build_model, downsize, mlp_spec


class _SlowExpert(Module):
    def __init__(self, inner, delay_s):
        super().__init__()
        self.inner = inner
        self.delay_s = delay_s

    def forward(self, x):
        time.sleep(self.delay_s)
        return self.inner(x)


def test_bench_straggler_tolerance(benchmark):
    rng = np.random.default_rng(0)
    team_size = 4
    straggler_s, deadline_s = 5.0, 0.5
    spec = downsize(mlp_spec(8, width=2048), team_size)
    cost = profile_model(build_model(spec, rng), (spec.in_features,))

    healthy = teamnet_metrics(cost, team_size, JETSON_TX2_CPU, WIFI)
    rows = [("healthy team", healthy.latency_s)]
    for stragglers in (1, 2, 3):
        for parallel in (True, False):
            m = teamnet_straggler_metrics(
                cost, team_size, JETSON_TX2_CPU, WIFI,
                straggler_s, deadline_s, num_stragglers=stragglers,
                parallel_gather=parallel)
            rows.append((f"{stragglers} straggler(s), "
                         f"{'parallel' if parallel else 'serial'} gather",
                         m.latency_s))

    # The concurrent collector's stall never exceeds one deadline; the
    # serial one pays per straggler.
    assert gather_stall_time(straggler_s, deadline_s, 3, True) == deadline_s
    assert gather_stall_time(straggler_s, deadline_s, 3, False) \
        == 3 * deadline_s

    # Cross-check on a real localhost team: one injected straggler, wall
    # time bounded by ~one deadline, survivors byte-identical.
    experts = [MLP(16, 4, depth=1, width=8, rng=np.random.default_rng(i))
               for i in range(team_size)]
    wire = [experts[0], experts[1],
            _SlowExpert(experts[2], 3 * deadline_s), experts[3]]
    master, workers = deploy_local_team(wire, degrade_on_failure=True,
                                        reply_timeout=deadline_s)
    try:
        x = rng.standard_normal((8, 16)).astype(np.float32)

        def degraded_infer():
            start = time.monotonic()
            preds, _, _ = master.infer(x)
            return preds, time.monotonic() - start

        preds, first_elapsed = degraded_infer()
        assert first_elapsed < 2 * deadline_s
        surviving = TeamInference([experts[0], experts[1], experts[3]])
        np.testing.assert_array_equal(preds, surviving.predict(x))
        # Steady state (straggler already dropped): full speed again.
        benchmark(lambda: master.infer(x))
    finally:
        master.close()
        for w in workers:
            w.stop()

    table = ResultTable(
        "Straggler tolerance on Jetson TX2 CPU (K=4, 5s straggler, "
        "0.5s deadline)",
        ["scenario", "master latency (ms)"])
    for name, latency in rows:
        table.add_row(name, latency * 1e3)
    print()
    print(table.render())
