"""Overload bench: goodput under a 10× burst, protected vs. unprotected.

The overload layer's promise is a *goodput floor*: on a seeded open-loop
warm/burst/recover schedule (Poisson, virtual time) the protected
serving model — AIMD admission, deadline sheds, LIFO under pressure,
brownout — must keep at least 70% of its warm goodput through the burst
AND through recovery, answer within the deadline (p99 of answered), and
never start service on an expired request.  The same arrivals through an
unbounded FIFO baseline must demonstrably queue-collapse: its backlog
outlives the burst and its recover-phase goodput rounds to nothing.

Fans :func:`repro.testkit.overload.overload_round` over seeds and writes
the full per-phase goodput trajectory for both runs to
``BENCH_overload.json`` (override with ``OVERLOAD_BENCH_JSON``).
"""

import json
import os

from repro.testkit import forbid_sockets
from repro.testkit.overload import overload_round

OUT_PATH = os.environ.get("OVERLOAD_BENCH_JSON", "BENCH_overload.json")
SEEDS = tuple(int(s) for s in
              os.environ.get("OVERLOAD_BENCH_SEEDS", "0,1,2").split(","))
#: the protected run must keep this fraction of warm goodput in burst
#: and recover phases (the ISSUE's acceptance floor)
GOODPUT_FLOOR = 0.7
#: the baseline's recover goodput must fall below this fraction of the
#: protected run's (queue collapse on identical arrivals)
COLLAPSE_CEILING = 0.3


def test_bench_overload_goodput():
    rows = []
    with forbid_sockets():
        for seed in SEEDS:
            report = overload_round(seed)     # gates assert inside
            rows.append(report.to_dict())

    worst_burst = min(row["protected"]["burst"]["goodput_rps"]
                      / row["protected"]["warm"]["goodput_rps"]
                      for row in rows)
    worst_recover = min(row["protected"]["recover"]["goodput_rps"]
                        / row["protected"]["warm"]["goodput_rps"]
                        for row in rows)
    worst_collapse = max(
        row["baseline"]["recover"]["goodput_rps"]
        / max(row["protected"]["recover"]["goodput_rps"], 1e-9)
        for row in rows)
    payload = {
        "seeds": list(SEEDS),
        "goodput_floor": GOODPUT_FLOOR,
        "collapse_ceiling": COLLAPSE_CEILING,
        "worst_burst_goodput_ratio": round(worst_burst, 4),
        "worst_recover_goodput_ratio": round(worst_recover, 4),
        "worst_baseline_recover_ratio": round(worst_collapse, 4),
        "rounds": rows,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n{len(rows)} seeds: protected kept >= "
          f"{worst_burst:.0%} of warm goodput through the burst and "
          f"{worst_recover:.0%} through recovery; unprotected baseline "
          f"recovered only {worst_collapse:.0%} of protected goodput "
          f"-> {OUT_PATH}")

    for row in rows:
        warm = row["protected"]["warm"]["goodput_rps"]
        assert row["protected"]["burst"]["goodput_rps"] \
            >= GOODPUT_FLOOR * warm, row["seed"]
        assert row["protected"]["recover"]["goodput_rps"] \
            >= GOODPUT_FLOOR * warm, row["seed"]
        # Shedding must not masquerade as speed: answered requests beat
        # the deadline at the 99th percentile in every phase.
        for phase in ("warm", "burst", "recover"):
            p99 = row["protected"][phase]["p99_answered_ms"]
            assert p99 is not None and p99 <= row["deadline_ms"], (
                row["seed"], phase, p99)
        # Zero expired requests reached service in the protected run;
        # the baseline demonstrably wasted forwards on dead work.
        assert row["forwards_on_expired_protected"] == 0, row["seed"]
        assert row["forwards_on_expired_baseline"] > 0, row["seed"]
        assert row["baseline"]["recover"]["goodput_rps"] \
            <= COLLAPSE_CEILING * row["protected"]["recover"]["goodput_rps"]
        # The ladder engaged under the burst and walked back down.
        assert row["brownout_escalations"] >= 1, row["seed"]
