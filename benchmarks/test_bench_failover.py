"""Failover bench: recovery time vs the lease's promotion budget.

The failover contract in :mod:`repro.distributed.failover` is timed, not
just safe: :class:`~repro.distributed.resilience.LeaseConfig` promises
that detection → election → re-attach → every parked request re-driven
and answered fits inside ``duration_s * promotion_multiple``.  This
bench sweeps lease durations and scripted link latencies on the
simulated fabric (virtual clock — scripted transit delays advance it,
nothing sleeps), kills the primary mid-traffic, and measures the
virtual time from the kill to the last re-driven answer.

Writes the sweep to ``BENCH_failover.json`` (override the path with
``FAILOVER_BENCH_JSON``) and gates every configuration on its own
``recovery_budget_s``.
"""

import json
import os

import numpy as np

from repro.distributed.failover import FailoverServer, MasterFailover
from repro.distributed.resilience import LeaseConfig
from repro.nn import MLP
from repro.testkit import (FaultSchedule, LinkFaults, SimFailoverCluster,
                           forbid_sockets)

OUT_PATH = os.environ.get("FAILOVER_BENCH_JSON", "BENCH_failover.json")
TEAM = 3
FEATURES = 10
SETTLED_REQUESTS = 4   # answered before the kill
PARKED_REQUESTS = 4    # submitted while leaderless, re-driven after
LEASE_DURATIONS_S = (0.2, 0.5, 1.0)
#: scripted one-way transit latency (lo, hi) in virtual seconds
LINK_LATENCIES_S = ((0.0, 0.0), (0.005, 0.02))


def make_experts(seed):
    return [MLP(FEATURES, 3, depth=1, width=6,
                rng=np.random.default_rng((seed, i))) for i in range(TEAM)]


def run_failover(duration_s, latency_s, seed):
    """One kill → detect → elect → promote → re-drive pass; returns the
    virtual-time breakdown."""
    lease = LeaseConfig(duration_s=duration_s)
    faults = LinkFaults(latency=latency_s)
    schedule = FaultSchedule(seed=seed, request=faults, reply=faults)
    rng = np.random.default_rng(seed)
    xs = [rng.standard_normal((2, FEATURES)).astype(np.float32)
          for _ in range(SETTLED_REQUESTS + PARKED_REQUESTS)]
    with SimFailoverCluster(make_experts(seed), schedule, n_standbys=2,
                            lease=lease) as cluster:
        front = FailoverServer(cluster.serve(max_batch=4, coalesce="exact"))
        futures = []
        for x in xs[:SETTLED_REQUESTS]:
            future = front.submit(x)
            futures.append(future)
            future.result(timeout=30.0)
        t_kill = cluster.clock.now
        front.kill(closer=cluster.kill_primary,
                   error=MasterFailover("bench: primary killed"))
        futures += [front.submit(x) for x in xs[SETTLED_REQUESTS:]]
        # Detection: the next poll after one lease duration observes
        # every reachable worker's lease expired.
        cluster.expire_lease()
        view = cluster.standby.poll()
        assert view.leader_lost, f"lease not observed expired: {view}"
        t_detected = cluster.clock.now
        winner = cluster.elect(priorities=[0.3, 0.7])
        t_elected = cluster.clock.now
        promoted = cluster.promote(rank=winner)
        t_promoted = cluster.clock.now
        try:
            redriven = front.failover_to(
                promoted.serve(max_batch=4, coalesce="exact"))
            for future in futures:
                future.result(timeout=30.0)
        finally:
            front.close()
        t_recovered = cluster.clock.now
        stats = front.stats()
    assert redriven == PARKED_REQUESTS
    assert stats.failed == 0
    assert stats.completed == len(xs)
    return {
        "lease_duration_s": duration_s,
        "recovery_budget_s": lease.recovery_budget_s,
        "link_latency_s": list(latency_s),
        "detection_s": t_detected - t_kill,
        "election_s": t_elected - t_detected,
        "promotion_s": t_promoted - t_elected,
        "redrive_s": t_recovered - t_promoted,
        "recovery_s": t_recovered - t_kill,
        "redriven": redriven,
        "duplicates_suppressed": stats.duplicates_suppressed,
    }


def test_bench_failover_recovery():
    sweep = []
    with forbid_sockets():
        for duration_s in LEASE_DURATIONS_S:
            for latency_s in LINK_LATENCIES_S:
                sweep.append(run_failover(duration_s, latency_s,
                                          seed=int(duration_s * 1000)))

    worst = max(sweep, key=lambda row: row["recovery_s"]
                / row["recovery_budget_s"])
    payload = {
        "team_size": TEAM,
        "standbys": 2,
        "settled_requests": SETTLED_REQUESTS,
        "parked_requests": PARKED_REQUESTS,
        "promotion_multiple": LeaseConfig().promotion_multiple,
        "worst_recovery_s": worst["recovery_s"],
        "worst_budget_fraction": worst["recovery_s"]
        / worst["recovery_budget_s"],
        "sweep": sweep,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nworst recovery {worst['recovery_s'] * 1000:.1f} ms of "
          f"{worst['recovery_budget_s'] * 1000:.0f} ms budget "
          f"(lease {worst['lease_duration_s']} s, latency "
          f"{worst['link_latency_s']}) -> {OUT_PATH}")

    for row in sweep:
        # The gate: the whole kill-to-last-answer window fits inside the
        # configured promotion budget, for every lease/latency pairing.
        assert row["recovery_s"] <= row["recovery_budget_s"], (
            f"recovery {row['recovery_s']:.3f} s blew the "
            f"{row['recovery_budget_s']:.3f} s budget at lease "
            f"{row['lease_duration_s']} s, latency {row['link_latency_s']}")
        # Detection dominates: everything after the lease expiry is
        # messaging, which must stay well under one extra lease.
        assert row["recovery_s"] - row["detection_s"] <= \
            row["lease_duration_s"] + 1.0
