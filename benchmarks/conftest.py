"""Shared benchmark configuration.

``BENCH_SCALE`` trades fidelity for runtime: large enough that accuracy
columns are meaningful, small enough that the full benchmark suite runs
in minutes on a laptop CPU.  The heavy artifacts (trained models) are
built once per session in the ``workloads`` fixture and shared by every
benchmark through ``Workloads.shared``.
"""

import pytest

from repro.experiments import ExperimentScale, Workloads

BENCH_SCALE = ExperimentScale(
    mnist_samples=2400, cifar_samples=800,
    mnist_epochs=12, cifar_epochs=5,
    mlp_width=64, cnn_width=8,
    gate_iterations=25, batch_size=64, seed=7,
)


@pytest.fixture(scope="session")
def workloads():
    return Workloads.shared(BENCH_SCALE)
