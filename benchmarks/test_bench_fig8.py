"""Benchmark: regenerate Figure 8 (gate convergence on CIFAR-10)."""

from conftest import BENCH_SCALE

import numpy as np

from repro.experiments import fig8


def test_bench_fig8(benchmark, workloads):
    workloads.teamnet("cifar", 2)
    workloads.teamnet("cifar", 4)
    result = benchmark(lambda: fig8.run(BENCH_SCALE))
    print()
    print(result.render())
    for k in (2, 4):
        series = result.series[f"proportions_k{k}"]
        tail = series[-max(5, len(series) // 4):].mean(axis=0)
        # CIFAR convergence is the slowest in the paper too (Fig. 8(b):
        # ~32000 iterations); at bench scale we only run a few hundred,
        # so the tolerance is looser than fig6's.
        assert np.abs(tail - 1.0 / k).max() < 0.2, (
            f"K={k} proportions did not converge to set point: {tail}")
