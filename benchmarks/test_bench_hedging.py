"""Extension bench: hedged gathers vs a 10x-median straggler.

One worker's reply link is scripted at ~10x the team's median latency.
Without hedging, every inference waits the straggler out (or burns the
full deadline); with hedging, the master learns the team's latency
distribution, suspects the straggler, and cuts it off after
``max(3 x median, floor)`` — trading that worker's (redundant) opinion
for tail latency.  The acceptance bar: hedged p99 under 50% of the
non-hedged p99 at *equal* accuracy.

Accuracy equality is provable, not statistical: the straggler hosts a
byte-identical copy of another expert, so dropping it can never change
the arg-min selection.  Latencies are virtual-clock deltas on the
deterministic sim fabric (no real sockets, no sleeps), so the numbers
are a pure function of the fault schedule.
"""

import numpy as np

from repro.distributed import ResilienceConfig
from repro.experiments import ResultTable
from repro.nn import MLP
from repro.testkit import FaultSchedule, LinkFaults, SimCluster, forbid_sockets
from repro.testkit.faults import REPLY

IN_DIM, CLASSES = 16, 4
TEAM_SIZE = 4          # worker 3 (the straggler) duplicates expert 2
STRAGGLER_ADDR = ("sim", 49154)
FAST = (0.008, 0.012)  # median ~10ms
SLOW = (0.100, 0.101)  # ~10x the median
# 3 latency samples per round, hedging arms at 8: long enough that the
# latency window flushes the straggler's pre-hedge samples and the hedge
# delay settles at ~3x the healthy median before measurement starts.
WARMUP = 10
ROUNDS = 60


def make_experts() -> list[MLP]:
    experts = [MLP(IN_DIM, CLASSES, depth=1, width=8,
                   rng=np.random.default_rng(i)) for i in range(3)]
    # The straggler is a clone of expert 2 (same init seed): removing it
    # from the quorum provably cannot change any prediction.
    experts.append(MLP(IN_DIM, CLASSES, depth=1, width=8,
                       rng=np.random.default_rng(2)))
    return experts


def run_soak(hedging: bool, inputs: np.ndarray):
    """Drive one cluster through all inputs; returns (per-inference
    virtual latencies, all predictions, rounds that hedged)."""
    schedule = FaultSchedule(
        seed=11, reply=LinkFaults(latency=FAST),
        per_address={STRAGGLER_ADDR: {REPLY: LinkFaults(latency=SLOW)}})
    # hedge_multiplier tuned down from the 3x default: this is the knob a
    # tail-sensitive deployment turns, and 2x the median still clears the
    # healthy peers' jitter band (8-12ms) comfortably.
    resilience = ResilienceConfig(
        hedging=hedging, hedge_multiplier=2.0, failure_threshold=10 ** 9,
        reset_timeout=0.0, reset_timeout_max=0.0)
    latencies, preds_all, hedged_rounds = [], [], 0
    with forbid_sockets(), \
            SimCluster(make_experts(), schedule, reply_timeout=1.0,
                       resilience=resilience) as cluster:
        for x in inputs[:WARMUP]:
            cluster.infer(x)
        for x in inputs[WARMUP:]:
            start = cluster.clock.now
            preds, _, stats = cluster.infer(x)
            latencies.append(cluster.clock.now - start)
            preds_all.append(preds)
            hedged_rounds += int(stats.hedged)
    return np.asarray(latencies), np.concatenate(preds_all), hedged_rounds


def test_bench_hedged_gather_tail_latency(benchmark):
    rng = np.random.default_rng(3)
    centers = rng.standard_normal((CLASSES, IN_DIM)) * 2
    labels = rng.integers(0, CLASSES, size=(WARMUP + ROUNDS, 8))
    inputs = centers[labels] + rng.standard_normal(labels.shape + (IN_DIM,))

    lat_off, preds_off, hedged_off = run_soak(False, inputs)
    lat_on, preds_on, hedged_on = run_soak(True, inputs)

    measured_labels = labels[WARMUP:].reshape(-1)
    acc_off = float((preds_off == measured_labels).mean())
    acc_on = float((preds_on == measured_labels).mean())

    p50_off, p99_off = np.percentile(lat_off, [50, 99])
    p50_on, p99_on = np.percentile(lat_on, [50, 99])

    # The hedging machinery actually engaged (and only when enabled).
    assert hedged_off == 0
    assert hedged_on >= ROUNDS * 0.9
    # The acceptance bar: tail latency halves, accuracy identical.
    assert p99_on < 0.5 * p99_off, (
        f"hedged p99 {p99_on * 1e3:.1f}ms not under half of "
        f"non-hedged {p99_off * 1e3:.1f}ms")
    assert acc_on == acc_off, (preds_on != preds_off).sum()
    assert preds_on.tobytes() == preds_off.tobytes()
    # Sanity on magnitudes: non-hedged pays the straggler's ~100ms,
    # hedged pays ~3x the healthy median.
    assert p99_off >= SLOW[0]
    assert p99_on < SLOW[0] / 2

    # Steady-state wall time of the hedged path (sim fabric, so this
    # prices the master's bookkeeping, not the network).
    x = inputs[-1]
    schedule = FaultSchedule(
        seed=11, reply=LinkFaults(latency=FAST),
        per_address={STRAGGLER_ADDR: {REPLY: LinkFaults(latency=SLOW)}})
    with SimCluster(make_experts(), schedule, reply_timeout=1.0,
                    resilience=ResilienceConfig(
                        failure_threshold=10 ** 9, reset_timeout=0.0,
                        reset_timeout_max=0.0)) as cluster:
        for warm in inputs[:WARMUP]:
            cluster.infer(warm)
        benchmark(lambda: cluster.infer(x))

    table = ResultTable(
        f"Hedged gather vs one 10x straggler (K={TEAM_SIZE}, "
        f"{ROUNDS} inferences, virtual seconds)",
        ["gather", "p50 (ms)", "p99 (ms)", "accuracy", "hedged rounds"])
    table.add_row("plain", p50_off * 1e3, p99_off * 1e3, acc_off, hedged_off)
    table.add_row("hedged", p50_on * 1e3, p99_on * 1e3, acc_on, hedged_on)
    print()
    print(table.render())