"""Ablation: arg-min gate vs (weighted) majority vote at inference.

Section V argues that because experts specialize, "considering the
prediction of 'non-expert' can be detrimental" — i.e. the arg-min gate
should beat ensemble-style voting.  This bench quantifies that on the
trained MNIST teams.
"""

from conftest import BENCH_SCALE

import numpy as np

from repro.core import TeamInference, argmin_select, majority_vote
from repro.experiments import ResultTable


def test_bench_ablation_vote(benchmark, workloads):
    _, test = workloads.mnist()
    teams = {k: workloads.teamnet("mnist", k)[0] for k in (2, 4)}

    def evaluate():
        rows = {}
        for k, team in teams.items():
            inference = TeamInference(team.experts)
            outputs = inference.forward_all(test.images)
            argmin_preds, _ = argmin_select(outputs)
            vote_preds = majority_vote(outputs)
            weighted_preds = majority_vote(outputs, weighted=True)
            rows[k] = tuple(
                float((p == test.labels).mean())
                for p in (argmin_preds, vote_preds, weighted_preds))
        return rows

    rows = benchmark(evaluate)
    table = ResultTable(
        "Ablation: inference combiner accuracy",
        ["K", "arg-min gate", "majority vote", "weighted vote"])
    for k, (am, mv, wv) in rows.items():
        table.add_row(k, 100 * am, 100 * mv, 100 * wv)
    print()
    print(table.render())
    # The paper's argument: argmin must not lose to unweighted voting on
    # specialized experts (for K=4, half-trained non-experts drag votes).
    am4, mv4, _ = rows[4]
    assert am4 >= mv4 - 0.02
