"""Ablation: dynamic gate vs plain arg-min gate during training.

The "richer gets richer" experiment: train two experts with (a) the plain
arg-min assignment and (b) the full dynamic gate, both from a biased
start, and compare the worst partition skew and final team accuracy.
"""

import numpy as np

from repro.core import (TeamInference, TeamNetTrainer, TrainerConfig,
                        entropy_matrix, expert_train_step)
from repro.core.gate import assignment_fractions
from repro.data import Dataset
from repro.experiments import ResultTable
from repro.nn import MLP, SGD

_CENTERS = np.random.default_rng(42).standard_normal((4, 16)) * 3


def make_dataset(n=320, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 4
    images = _CENTERS[labels] + rng.standard_normal((n, 16))
    return Dataset(images.reshape(n, 1, 1, 16), labels)


def make_experts(seed=100):
    return [MLP(16, 4, depth=1, width=8, rng=np.random.default_rng(seed + i))
            for i in range(2)]


def head_start(experts, ds):
    opt = SGD(experts[0].parameters(), lr=0.1, momentum=0.9)
    for _ in range(3):
        expert_train_step(experts[0], opt, ds.images[:64], ds.labels[:64])


def train_argmin_gate(ds, batches=24, seed=0):
    experts = make_experts()
    head_start(experts, ds)
    optimizers = [SGD(e.parameters(), lr=0.1, momentum=0.9)
                  for e in experts]
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(batches):
        idx = rng.permutation(len(ds))[:32]
        x, y = ds.images[idx], ds.labels[idx]
        assign = entropy_matrix(experts, x).argmin(axis=1)
        worst = max(worst, assignment_fractions(assign, 2).max())
        for i, (e, opt) in enumerate(zip(experts, optimizers)):
            mask = assign == i
            if mask.sum():
                expert_train_step(e, opt, x[mask], y[mask])
    acc = TeamInference(experts).accuracy(ds.images, ds.labels)
    return worst, acc


def train_dynamic_gate(ds, batches=24, seed=0):
    experts = make_experts()
    head_start(experts, ds)
    trainer = TeamNetTrainer(experts, TrainerConfig(
        batch_size=32, lr=0.1, gate_max_iterations=12, seed=seed))
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(batches):
        idx = rng.permutation(len(ds))[:32]
        result = trainer.train_batch(ds.images[idx], ds.labels[idx])
        worst = max(worst, result.gamma_bar.max())
    acc = TeamInference(experts).accuracy(ds.images, ds.labels)
    return worst, acc


def test_bench_ablation_gate(benchmark):
    ds = make_dataset()

    def run_both():
        return train_argmin_gate(ds), train_dynamic_gate(ds)

    (argmin_worst, argmin_acc), (dyn_worst, dyn_acc) = benchmark(run_both)
    table = ResultTable("Ablation: richer-gets-richer",
                        ["gate", "worst partition share", "team accuracy"])
    table.add_row("plain arg-min", argmin_worst, 100 * argmin_acc)
    table.add_row("dynamic (TeamNet)", dyn_worst, 100 * dyn_acc)
    print()
    print(table.render())
    # The plain argmin gate collapses; the dynamic gate never lets one
    # expert take (nearly) everything.
    assert argmin_worst > 0.9
    assert dyn_worst < 0.85
