"""Ablation: meta-estimated soft-argmin temperature vs fixed ``b``.

The paper's meta-estimator (eq. 6) adapts ``b`` so the soft assignments
sit near-integer without flattening gradients.  We compare the gate's
objective tracking (mean |gamma_bar - target|) under the meta-estimator
against fixed temperatures.
"""

import numpy as np

from repro.core.gate import DynamicGate
from repro.experiments import ResultTable
from repro.nn import Tensor


def run_gate(fixed_b: float | None, batches: int = 15, seed: int = 0):
    rng = np.random.default_rng(seed)
    gate = DynamicGate(num_experts=2, seed=seed, max_iterations=25)
    if fixed_b is not None:
        gate.meta.forward = lambda gated: Tensor(np.array([float(fixed_b)]))
    errors = []
    for _ in range(batches):
        H = np.stack([rng.uniform(0.2, 0.6, 64),
                      rng.uniform(0.5, 1.1, 64)], axis=1)
        result = gate.train_batch(H)
        target = np.clip(0.5 - gate.gain * (result.gamma - 0.5), 0, 1)
        target = target / target.sum()
        errors.append(float(np.abs(result.gamma_bar - target).mean()))
    return float(np.mean(errors))


def test_bench_ablation_softmin(benchmark):
    configs = {"meta-estimator": None, "b=2": 2.0, "b=10": 10.0,
               "b=50": 50.0}

    def sweep():
        return {name: run_gate(b) for name, b in configs.items()}

    results = benchmark(sweep)
    table = ResultTable("Ablation: soft-argmin temperature",
                        ["config", "mean |gamma_bar - target|"])
    for name, err in results.items():
        table.add_row(name, err)
    print()
    print(table.render())
    # The adaptive temperature must be competitive with the best fixed b.
    fixed_best = min(v for k, v in results.items() if k != "meta-estimator")
    assert results["meta-estimator"] <= fixed_best + 0.05
