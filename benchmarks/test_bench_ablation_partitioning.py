"""Ablation: three ways to partition knowledge across experts.

Compares, on the same MNIST workload with the same expert architectures:

* **TeamNet** — competitive/selective learning with the dynamic gate;
* **SG-MoE** — Shazeer's noisy top-k gate, trained jointly;
* **Adaptive MoE** — Jacobs et al. 1991 dense gating (the classic the
  paper's related-work section starts from).

The paper's claim is that explicit, balanced specialization (TeamNet)
keeps accuracy while enabling argmin-gate inference with two messages; the
MoE variants soft-specialize but need the gate network at inference.
"""

from conftest import BENCH_SCALE

import numpy as np

from repro.experiments import ResultTable
from repro.moe import AdaptiveMixture, AdaptiveMoEConfig, AdaptiveMoETrainer
from repro.nn import build_model, downsize


def test_bench_ablation_partitioning(benchmark, workloads):
    train, test = workloads.mnist()
    _, team_acc = workloads.teamnet("mnist", 2)
    _, sgmoe_acc = workloads.moe("mnist", 2)

    def train_adaptive():
        reference = BENCH_SCALE.mnist_reference
        expert_spec = downsize(reference, 2)
        experts = [build_model(expert_spec, np.random.default_rng(i))
                   for i in range(2)]
        mixture = AdaptiveMixture(experts, expert_spec.in_features,
                                  rng=np.random.default_rng(9))
        trainer = AdaptiveMoETrainer(mixture, AdaptiveMoEConfig(
            epochs=BENCH_SCALE.mnist_epochs,
            batch_size=BENCH_SCALE.batch_size, seed=BENCH_SCALE.seed))
        trainer.train(train)
        return trainer.accuracy(test)

    adaptive_acc = benchmark.pedantic(train_adaptive, rounds=1,
                                      iterations=1)
    table = ResultTable(
        "Ablation: partitioning approaches (2 experts, MNIST)",
        ["approach", "accuracy (%)", "inference-time gate"])
    table.add_row("TeamNet (competitive)", 100 * team_acc,
                  "arg-min entropy (no gate net)")
    table.add_row("SG-MoE (noisy top-k)", 100 * sgmoe_acc,
                  "gate network, top-k routing")
    table.add_row("Adaptive MoE (Jacobs 1991)", 100 * adaptive_acc,
                  "dense gate network")
    print()
    print(table.render())
    # All three must clearly learn; TeamNet must be competitive.
    assert min(team_acc, sgmoe_acc, adaptive_acc) > 0.5
    assert team_acc > max(sgmoe_acc, adaptive_acc) - 0.10
