"""Integrity bench: silent-corruption detection latency and recovery.

The integrity layer's promise is timed in *canary probes*, not seconds:
with ``probe_every=1`` a corrupted worker must be quarantined within the
next few heartbeat-ridden probes, auto-redeployed from the checkpoint
store, and readmitted — after which answers are byte-identical to the
never-corrupted golden run.  This bench fans
:func:`repro.testkit.integrity.integrity_round` out over seeds and
rounds (sharpened experts, live weight bit-flips, stale workers
rejoining after a redeploy), records the probe counts, and re-runs the
sharpen cases on an *unprotected* master to show the baseline really is
poisoned on the same schedule.

Writes the sweep to ``BENCH_integrity.json`` (override the path with
``INTEGRITY_BENCH_JSON``) and gates every round on the probe budgets.
"""

import json
import os

from repro.testkit import forbid_sockets, integrity_round

OUT_PATH = os.environ.get("INTEGRITY_BENCH_JSON", "BENCH_integrity.json")
SEEDS = (0, 1)
ROUNDS_PER_SEED = 6
#: probe_every=1, so detection must land within a couple of heartbeats
DETECT_PROBE_BUDGET = 3
#: redeploy + readmit_passes=2 consecutive clean canaries
RECOVERY_PROBE_BUDGET = 5


def test_bench_integrity_detection_latency():
    rows = []
    with forbid_sockets():
        for seed in SEEDS:
            for round_index in range(ROUNDS_PER_SEED):
                rows.append(integrity_round(seed, round_index))

    modes = {}
    for row in rows:
        modes[row["mode"]] = modes.get(row["mode"], 0) + 1
    worst_detect = max(row["detect_probes"] for row in rows)
    worst_recovery = max(row["recovery_probes"] for row in rows)
    baseline_divergences = sum(row.get("baseline_diverged", 0)
                               for row in rows)
    payload = {
        "seeds": list(SEEDS),
        "rounds_per_seed": ROUNDS_PER_SEED,
        "modes": modes,
        "detect_probe_budget": DETECT_PROBE_BUDGET,
        "recovery_probe_budget": RECOVERY_PROBE_BUDGET,
        "worst_detect_probes": worst_detect,
        "worst_recovery_probes": worst_recovery,
        "baseline_divergences": baseline_divergences,
        "rounds": rows,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n{len(rows)} rounds over {modes}: worst detection "
          f"{worst_detect} probe(s), worst recovery {worst_recovery} "
          f"probe(s); unprotected baseline diverged on "
          f"{baseline_divergences} answers -> {OUT_PATH}")

    # Every corruption mode must actually have been exercised.
    assert set(modes) == {"sharpen", "bitflip", "stale-reconnect"}, modes
    for row in rows:
        # The gate: detection and full recovery fit their probe budgets
        # for every seed, round and corruption mode.
        assert row["detect_probes"] <= DETECT_PROBE_BUDGET, (
            f"seed {row['seed']} round {row['round']} ({row['mode']}): "
            f"detection took {row['detect_probes']} probes")
        assert row["recovery_probes"] <= RECOVERY_PROBE_BUDGET, (
            f"seed {row['seed']} round {row['round']} ({row['mode']}): "
            f"recovery took {row['recovery_probes']} probes")
        assert row["readmissions"] == 1
    # The defense must demonstrably matter: the unprotected master served
    # wrong answers on the very same schedules the protected one survived.
    assert baseline_divergences >= 1
