"""Extension bench: sustained-load throughput of TeamNet vs the baseline.

Beyond the paper's one-shot latency: feed a Poisson request stream into
the edge cluster's queue and measure sojourn-time percentiles as the
arrival rate approaches each approach's capacity.  TeamNet's lower
per-inference latency on CPU-class devices becomes a proportionally
higher sustainable request rate.
"""

import numpy as np

from repro.edge import (RASPBERRY_PI_3B, WIFI, baseline_metrics,
                        capacity_sweep, profile_model, sustainable_rate,
                        teamnet_metrics)
from repro.experiments import ResultTable
from repro.nn import build_model, downsize, mlp_spec


def test_bench_throughput(benchmark):
    rng = np.random.default_rng(0)
    ref = mlp_spec(8, width=2048)
    base = baseline_metrics(
        profile_model(build_model(ref, rng), (ref.in_features,)),
        RASPBERRY_PI_3B)
    spec = downsize(ref, 4)
    team = teamnet_metrics(
        profile_model(build_model(spec, rng), (spec.in_features,)),
        4, RASPBERRY_PI_3B, WIFI)

    def sweep():
        rows = {}
        for name, latency in (("baseline", base.latency_s),
                              ("teamnet-4", team.latency_s)):
            capacity = sustainable_rate(latency)
            rates = [0.5 * capacity, 0.8 * capacity, 0.95 * capacity]
            rows[name] = (capacity, capacity_sweep(latency, rates,
                                                   duration=30.0))
        return rows

    rows = benchmark(sweep)
    table = ResultTable(
        "Sustained load on Raspberry Pi 3B+ (MNIST, Poisson arrivals)",
        ["approach", "capacity (req/s)", "load", "p95 sojourn (ms)",
         "drop rate"])
    for name, (capacity, sweep_rows) in rows.items():
        for row in sweep_rows:
            table.add_row(name, capacity, f"{row['rate'] / capacity:.0%}",
                          row["p95_sojourn_ms"], row["drop_rate"])
    print()
    print(table.render())

    base_capacity = rows["baseline"][0]
    team_capacity = rows["teamnet-4"][0]
    assert team_capacity > 2 * base_capacity
    # At matched *relative* load, latencies stay bounded for both.
    for _, (__, sweep_rows) in rows.items():
        assert sweep_rows[0]["drop_rate"] == 0.0
