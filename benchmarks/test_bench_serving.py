"""Serving-core bench: open-loop micro-batched throughput vs synchronous.

The tentpole claim behind :class:`repro.distributed.serving.TeamNetServer`:
one synchronous ``TeamNetMaster.infer`` at a time caps throughput at
``1 / end-to-end-latency``; the serving core coalesces queued requests
into micro-batches and pipelines broadcasts over the seq-multiplexed
connections, so a 4-expert team on real localhost sockets must sustain
**at least 5x** the back-to-back synchronous request rate at bounded
p95 latency.

The run drives the *real* master (TCP, real workers, real numpy
forwards) with Poisson open-loop traffic at escalating offered rates and
writes the rps + p50/p95/p99 trajectory to ``BENCH_throughput.json``
(override the path with ``SERVE_BENCH_JSON``, the per-rate duration with
``SERVE_BENCH_DURATION`` — CI's smoke run shortens it).
"""

import json
import os
import time

import numpy as np

from repro.distributed.teamnet_runtime import deploy_local_team
from repro.edge import drive_open_loop, poisson_arrivals
from repro.nn import build_model, downsize, mlp_spec

TEAM = 4
DURATION = float(os.environ.get("SERVE_BENCH_DURATION", "3.0"))
OUT_PATH = os.environ.get("SERVE_BENCH_JSON", "BENCH_throughput.json")
#: offered load, as multiples of the measured synchronous capacity
OFFERED_MULTIPLES = (2.0, 4.0, 8.0, 16.0)


def test_bench_serving_throughput():
    spec = downsize(mlp_spec(4, width=64), TEAM)
    experts = [build_model(spec, np.random.default_rng((21, i)))
               for i in range(TEAM)]
    x = np.random.default_rng(21).standard_normal((1, spec.in_features))
    master, workers = deploy_local_team(experts, reply_timeout=10.0)
    try:
        for _ in range(10):  # warm connections, caches, BLAS
            master.infer(x)

        # Baseline: back-to-back synchronous infers (one in flight, ever).
        t0 = time.monotonic()
        sync_done = 0
        while time.monotonic() - t0 < max(1.0, DURATION / 2):
            master.infer(x)
            sync_done += 1
        sync_rps = sync_done / (time.monotonic() - t0)

        trajectory = []
        # ``fused``: one batched forward per broadcast — the throughput
        # configuration (the ``exact`` mode's bit-identity is proven by
        # the differential suite, not timed here).
        with master.serve(max_batch=64, max_queue=2048, max_inflight=4,
                          coalesce="fused") as server:
            for multiple in OFFERED_MULTIPLES:
                rate = multiple * sync_rps
                arrivals = poisson_arrivals(
                    rate, DURATION, np.random.default_rng(int(multiple)))
                report = drive_open_loop(server.submit, arrivals,
                                         [x] * len(arrivals))
                trajectory.append({
                    "offered_multiple_of_sync": multiple,
                    "offered_rps": rate,
                    **report.to_dict(),
                })
            stats = server.stats()
    finally:
        master.close()
        for worker in workers:
            worker.stop()

    best = max(trajectory, key=lambda row: row["rps"])
    payload = {
        "team_size": TEAM,
        "duration_per_rate_s": DURATION,
        "sync_rps": sync_rps,
        "best_rps": best["rps"],
        "speedup_vs_sync": best["rps"] / sync_rps,
        "trajectory": trajectory,
        "serving": {
            "batches": stats.batches,
            "batched_rows": stats.batched_rows,
            "max_batch_requests": stats.max_batch_requests,
            "mean_batch_requests": stats.mean_batch_requests,
            "completed": stats.completed,
            "rejected": stats.rejected,
            "failed": stats.failed,
        },
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nsync {sync_rps:.0f} rps -> serving {best['rps']:.0f} rps "
          f"({payload['speedup_vs_sync']:.1f}x), p95 {best['p95_ms']:.1f} ms, "
          f"mean batch {stats.mean_batch_requests:.1f} requests "
          f"-> {OUT_PATH}")

    assert stats.failed == 0
    # Coalescing actually happened — the speedup is micro-batching, not
    # an artifact of the load driver.
    assert stats.max_batch_requests > 1
    # The acceptance bar: >= 5x the synchronous request rate...
    assert best["rps"] >= 5.0 * sync_rps, (
        f"serving sustained {best['rps']:.0f} rps, needs "
        f">= {5.0 * sync_rps:.0f} (5x sync {sync_rps:.0f})")
    # ...at bounded latency (queueing did not run away).
    assert best["p95_ms"] < 2000.0
