"""Benchmark: regenerate Figure 9 (expert specialization on CIFAR-10)."""

from conftest import BENCH_SCALE

import numpy as np

from repro.experiments import fig9


def test_bench_fig9(benchmark, workloads):
    workloads.teamnet("cifar", 2)
    workloads.teamnet("cifar", 4)
    result = benchmark(lambda: fig9.run(BENCH_SCALE))
    print()
    print(result.render())
    # Specialization must be meaningfully above uniform for K=2 (the
    # paper's machines-vs-animals split).
    share = result.series["certainty_share_k2"]
    assert fig9.specialization_score(share) > 0.2
    # Every class is covered by some expert.
    assert np.allclose(share.sum(axis=0), 1.0)
