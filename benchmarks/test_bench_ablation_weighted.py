"""Ablation: capacity-aware (non-uniform) partition targets.

The paper's future work: "explore other objective functions especially
those [that] can adapt to ... imbalances".  With heterogeneous devices a
uniform 1/K split leaves fast devices idle; this bench trains TeamNet
with weighted set points and shows the gate tracks them, then prices the
heterogeneous deployment: give the Jetson-class expert a deeper share and
the RPi the remainder.
"""

import numpy as np

from repro.core import TeamNet, TrainerConfig
from repro.data import synthetic_mnist, train_test_split
from repro.experiments import ResultTable
from repro.nn import mlp_spec


def test_bench_ablation_weighted(benchmark):
    dataset = synthetic_mnist(1200, seed=5)
    train, test = train_test_split(dataset, 0.2,
                                   np.random.default_rng(5))

    def run(weights):
        # Asymmetric set points need a gentler proportional gain: with the
        # default a=0.5 the correction overshoots past the target and the
        # training feedback loop saturates (see DESIGN.md).
        config = TrainerConfig(epochs=6, batch_size=64,
                               gate_max_iterations=15, seed=5,
                               gain=0.25, partition_weights=weights)
        team = TeamNet.from_reference(mlp_spec(8, width=32), 2,
                                      config=config, seed=5)
        monitor = team.fit(train)
        shares = monitor.history()[-15:].mean(axis=0)
        return team.accuracy(test), shares

    def both():
        return {"uniform": run(None), "weighted-70/30": run((0.7, 0.3))}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation: partition set points (2 experts, MNIST)",
        ["target", "accuracy (%)", "expert shares"])
    for name, (acc, shares) in results.items():
        table.add_row(name, 100 * acc, str(np.round(shares, 2).tolist()))
    print()
    print(table.render())

    _, uniform_shares = results["uniform"]
    _, weighted_shares = results["weighted-70/30"]
    assert abs(uniform_shares[0] - 0.5) < 0.12
    assert abs(weighted_shares[0] - 0.7) < 0.12  # tracks the 0.7 target
    acc_u, _ = results["uniform"]
    acc_w, _ = results["weighted-70/30"]
    assert acc_w > acc_u - 0.15  # skewed shares don't wreck accuracy
