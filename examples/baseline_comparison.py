#!/usr/bin/env python3
"""Run every distributed baseline the paper compares against — for real.

On localhost we execute, with actual sockets/collectives:
  * TeamNet master/worker (broadcast + argmin gather);
  * MPI-Matrix (row-split matmuls, one allgather per Linear layer);
  * MPI-Kernel (channel-split convs, one allgather per Conv layer);
  * MPI-Branch (Shake-Shake branches on two ranks);
  * SG-MoE-G (RPC-routed experts) and SG-MoE-M (MPI bcast/gather).

Each runtime's traffic is metered; the script then prices those measured
message patterns against the paper's Jetson-over-WiFi model, showing why
Table I/II rank the approaches the way they do.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.comm import run_group
from repro.distributed import (MoEGrpcMaster, MpiBranchRunner,
                               MpiKernelRunner, MpiMatrixRunner,
                               deploy_local_team, moe_mpi_forward,
                               serve_expert)
from repro.edge import (JETSON_TX2_CPU, WIFI, baseline_metrics,
                        moe_grpc_metrics, moe_mpi_metrics,
                        mpi_branch_metrics, mpi_kernel_metrics,
                        mpi_matrix_metrics, profile_model, teamnet_metrics)
from repro.moe import MixtureOfExperts, NoisyTopKGate
from repro.nn import (MLP, ShakeShakeCNN, Tensor, build_model, downsize,
                      mlp_spec, no_grad, shake_shake_spec)


def measured_traffic() -> None:
    print("[1/2] measured message counts on the real runtimes "
          "(localhost):\n")
    rng = np.random.default_rng(3)
    x = rng.standard_normal((1, 64)).astype(np.float32)

    # TeamNet: 2 messages per peer, period.
    experts = [MLP(64, 10, depth=2, width=16,
                   rng=np.random.default_rng(i)) for i in range(2)]
    master, workers = deploy_local_team(experts)
    try:
        _, _, stats = master.infer(x)
        print(f"   TeamNet (2 nodes):      "
              f"{stats.messages_sent + stats.messages_received} messages, "
              f"{stats.bytes_sent + stats.bytes_received} bytes")
    finally:
        master.close()
        for w in workers:
            w.stop()

    # MPI-Matrix over a 4-layer MLP.
    mlp = MLP(64, 10, depth=4, width=32, rng=np.random.default_rng(9))
    mlp.eval()

    def matrix_work(comm):
        comm.reset_stats()
        MpiMatrixRunner(mlp, comm).predict(x)
        return comm.stats

    stats = run_group(2, matrix_work)[0]
    print(f"   MPI-Matrix (2 nodes):   "
          f"{stats.messages_sent + stats.messages_received} messages, "
          f"{stats.bytes_sent + stats.bytes_received} bytes "
          f"(one allgather per Linear layer)")

    # MPI-Kernel / MPI-Branch over a small Shake-Shake CNN.
    cnn = ShakeShakeCNN(3, 10, blocks_per_stage=1, base_width=8,
                        rng=np.random.default_rng(10))
    cnn.eval()
    xi = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)

    def kernel_work(comm):
        comm.reset_stats()
        MpiKernelRunner(cnn, comm).predict(xi)
        return comm.stats

    stats = run_group(2, kernel_work)[0]
    print(f"   MPI-Kernel (2 nodes):   "
          f"{stats.messages_sent + stats.messages_received} messages, "
          f"{stats.bytes_sent + stats.bytes_received} bytes "
          f"(whole feature maps per Conv!)")

    def branch_work(comm):
        comm.reset_stats()
        MpiBranchRunner(cnn, comm).predict(xi)
        return comm.stats

    stats = run_group(2, branch_work)[0]
    print(f"   MPI-Branch (2 nodes):   "
          f"{stats.messages_sent + stats.messages_received} messages, "
          f"{stats.bytes_sent + stats.bytes_received} bytes "
          f"(one swap per residual block)")

    # SG-MoE over RPC and MPI.
    moe_experts = [MLP(64, 10, depth=2, width=16,
                       rng=np.random.default_rng(20 + i)) for i in range(3)]
    gate = NoisyTopKGate(64, 3, k=2, rng=np.random.default_rng(30))
    moe = MixtureOfExperts(moe_experts, gate)
    moe.eval()
    servers = [serve_expert(e) for e in moe_experts[1:]]
    grpc_master = MoEGrpcMaster(moe, [s.address for s in servers])
    try:
        _, round_trips = grpc_master.infer(x)
        print(f"   SG-MoE-G (3 nodes):     {2 * round_trips} messages "
              f"({round_trips} RPC round trips to selected experts)")
    finally:
        grpc_master.close()
        for s in servers:
            s.stop()

    def moe_work(comm):
        comm.reset_stats()
        moe_mpi_forward(moe, x if comm.rank == 0 else None, comm)
        return comm.stats

    stats = run_group(3, moe_work)[0]
    print(f"   SG-MoE-M (3 nodes):     "
          f"{stats.messages_sent + stats.messages_received} messages "
          f"(bcast to all + gather from all)")


def priced_latencies() -> None:
    print("\n[2/2] those patterns priced on a Jetson TX2 CPU over WiFi "
          "(deployment-scale CIFAR models):\n")
    rng = np.random.default_rng(0)
    reference = shake_shake_spec(26, width=96)
    base_cost = profile_model(build_model(reference, rng),
                              reference.in_shape)
    gate_spec = mlp_spec(1, width=8, in_shape=(3, 32, 32))
    gate_cost = profile_model(build_model(gate_spec, rng), (3072,))
    rows = [("Baseline SS-26 (1 node)",
             baseline_metrics(base_cost, JETSON_TX2_CPU))]
    for k in (2, 4):
        spec = downsize(reference, k)
        expert_cost = profile_model(build_model(spec, rng), spec.in_shape)
        rows.append((f"TeamNet {k}x{spec.name}",
                     teamnet_metrics(expert_cost, k, JETSON_TX2_CPU, WIFI)))
        rows.append((f"MPI-Kernel ({k} nodes)",
                     mpi_kernel_metrics(base_cost, k, JETSON_TX2_CPU,
                                        WIFI)))
        rows.append((f"SG-MoE-G ({k} nodes)",
                     moe_grpc_metrics(expert_cost, gate_cost, k,
                                      JETSON_TX2_CPU, WIFI)))
        rows.append((f"SG-MoE-M ({k} nodes)",
                     moe_mpi_metrics(expert_cost, gate_cost, k,
                                     JETSON_TX2_CPU, WIFI)))
    rows.insert(3, ("MPI-Branch (2 nodes)",
                    mpi_branch_metrics(base_cost, JETSON_TX2_CPU, WIFI)))
    for name, metrics in rows:
        print(f"   {name:<26} {metrics.latency_ms:9.1f} ms")
    print("\nTeamNet talks twice per inference; the MPI partitions talk "
          "per layer — that is the whole story of Tables I and II.")


def main() -> None:
    print("=== Distributed baselines, measured and priced ===\n")
    measured_traffic()
    priced_latencies()


if __name__ == "__main__":
    main()
