#!/usr/bin/env python3
"""Quickstart: train a TeamNet and compare it against the deep baseline.

This is the paper's headline workflow (Section III): hand TeamNet a
reference architecture (MLP-8) and an expert count, let competitive
learning partition the dataset, and check that the collaborating shallow
experts match the deep model's accuracy.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import TeamNet, TrainerConfig
from repro.data import synthetic_mnist, train_test_split
from repro.experiments.workloads import model_accuracy, train_single_model
from repro.nn import mlp_spec


def main() -> None:
    print("=== TeamNet quickstart (synthetic MNIST) ===\n")
    rng = np.random.default_rng(0)
    dataset = synthetic_mnist(num_samples=2400, seed=0)
    train, test = train_test_split(dataset, test_fraction=0.2, rng=rng)
    print(f"dataset: {len(train)} train / {len(test)} test, "
          f"{dataset.num_classes} classes, images {dataset.sample_shape}")

    # The reference (SOTA) architecture the user would normally deploy.
    reference = mlp_spec(depth=8, width=64)
    print(f"\n[1/3] training the deep baseline {reference.name} ...")
    start = time.time()
    baseline = train_single_model(reference, train, epochs=12, seed=0)
    base_acc = model_accuracy(baseline, test)
    print(f"      {reference.name}: accuracy {base_acc:.3f} "
          f"({time.time() - start:.0f}s)")

    for step, num_experts in enumerate((2, 4), start=2):
        print(f"\n[{step}/3] training TeamNet with "
              f"{num_experts} experts ...")
        config = TrainerConfig(epochs=12, batch_size=64, seed=0)
        team = TeamNet.from_reference(reference, num_experts, config=config,
                                      seed=0)
        print(f"      experts use the downsized architecture "
              f"{team.expert_spec.name}")
        start = time.time()
        monitor = team.fit(train)
        team_acc = team.accuracy(test)
        expert_accs = team.expert_accuracy(test)
        print(f"      TeamNet-{num_experts}: accuracy {team_acc:.3f} "
              f"({time.time() - start:.0f}s)")
        print(f"      individual experts alone: "
              f"{[f'{a:.3f}' for a in expert_accs]}")
        print(f"      assignment proportions converged to "
              f"{monitor.history()[-20:].mean(axis=0).round(3)} "
              f"(set point {monitor.set_point:.3f})")
        assert team_acc > max(expert_accs), \
            "collaboration should beat any single specialized expert"

    print("\nDone: shallow specialized experts, combined by the arg-min "
          "uncertainty gate, match the deep baseline — the paper's core "
          "claim.")


if __name__ == "__main__":
    main()
