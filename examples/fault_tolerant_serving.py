#!/usr/bin/env python3
"""Fault-tolerant TeamNet serving + sustained-load capacity planning.

Five extensions beyond the paper, built on its runtime:

1. **Graceful degradation** — kill a worker mid-stream and watch the
   master drop it from the team and keep answering from the survivors
   (at reduced accuracy: each expert only knows its partition).  The
   gather is concurrent with a single per-inference deadline
   (``reply_timeout``), so even a dead or straggling worker costs at
   most one deadline per inference — never one timeout per peer.
2. **Automatic recovery** — restart the killed worker on the same port
   and watch the master reconnect (capped exponential backoff, starting
   at ``reconnect_backoff`` seconds) and fold it back into the team,
   without redeploying anything.
3. **Expert failover via redeployment** — training checkpoints the full
   team into a durable :class:`repro.store.CheckpointStore`; when a
   worker dies *permanently* (kills past the circuit-breaker cap), the
   master pushes that slot's checkpointed expert onto a cold standby
   node and rewires the slot — full-team accuracy comes back even
   though the original node never does.
4. **Master failover** — kill the *master* mid-service: the workers'
   leadership lease expires, a hot :class:`StandbyMaster` observes it,
   promotes itself at the next epoch (fencing the old master off), and
   the :class:`FailoverServer` re-drives every parked request to the
   successor — no accepted request is dropped or answered twice.
5. **Capacity planning** — use the queueing simulator to find the request
   rate each deployment sustains on Raspberry-Pi-class hardware.

Run:  python examples/fault_tolerant_serving.py
"""

import tempfile
import time

import numpy as np

from repro.core import TeamNet, TrainerConfig
from repro.data import synthetic_mnist, train_test_split
from repro.distributed import (FailoverServer, LeaseConfig, MasterFailover,
                               ResilienceConfig, StandbyMaster,
                               deploy_local_team)
from repro.distributed.teamnet_runtime import ExpertWorker, TeamNetMaster
from repro.edge import (RASPBERRY_PI_3B, WIFI, baseline_metrics,
                        capacity_sweep, profile_model, sustainable_rate,
                        teamnet_metrics)
from repro.nn import build_model, downsize, mlp_spec
from repro.store import CheckpointStore


def main() -> None:
    print("=== Fault-tolerant serving & capacity planning ===\n")
    rng = np.random.default_rng(4)
    dataset = synthetic_mnist(1600, seed=4)
    train, test = train_test_split(dataset, 0.2, rng=rng)
    checkpoint_dir = tempfile.mkdtemp(prefix="teamnet-ckpt-")

    print("[1/6] training a 3-expert team (checkpointing every epoch) ...")
    team = TeamNet.from_reference(
        mlp_spec(depth=8, width=64), num_experts=3,
        config=TrainerConfig(epochs=8, seed=4), seed=4)
    store = CheckpointStore(checkpoint_dir)
    team.fit(train, checkpoint_store=store)
    print(f"      full-team accuracy: {team.accuracy(test):.3f}")
    print(f"      durable checkpoint: generation "
          f"{store.latest_valid()} in {checkpoint_dir}/")

    print("\n[2/6] serving with degradation enabled, then killing a "
          "worker ...")
    master, workers = deploy_local_team(
        team.experts, degrade_on_failure=True, reply_timeout=2.0,
        reconnect_backoff=0.1, reconnect_backoff_max=1.0,
        resilience=ResilienceConfig(failure_threshold=2))
    master.store = store  # arm redeploy with the checkpointed experts
    standby = None
    try:
        batch = test.images[:64]
        labels = test.labels[:64]
        preds, _, _ = master.infer(batch)
        print(f"      healthy team ({master.live_team_size} nodes): "
              f"accuracy {np.mean(preds == labels):.3f}")
        workers[0].stop()
        print("      !! worker 1 killed")
        for _ in range(2):  # first call notices the failure
            preds, winner, _ = master.infer(batch)
        print(f"      degraded team ({master.live_team_size} nodes, "
              f"failed={master.failed_workers}): "
              f"accuracy {np.mean(preds == labels):.3f}")
        print(f"      surviving winners: {sorted(set(winner.tolist()))}")

        print("\n[3/6] restarting the worker on the same port ...")
        workers[0].start()
        deadline = time.monotonic() + 10.0
        while master.failed_workers and time.monotonic() < deadline:
            time.sleep(0.1)  # give the backoff window a chance to elapse
            preds, _, _ = master.infer(batch)
        print(f"      recovered team ({master.live_team_size} nodes, "
              f"failed={master.failed_workers}): "
              f"accuracy {np.mean(preds == labels):.3f}")

        print("\n[4/6] killing worker 1 for good, then redeploying its "
              "expert onto a standby node ...")
        workers[0].stop()
        # Drive the breaker past its cap: this node is not coming back.
        while 1 not in master.failed_workers:
            master.infer(batch)
        preds, _, stats = master.infer(batch)
        print(f"      degraded ({stats.participants} participants): "
              f"accuracy {np.mean(preds == labels):.3f}")
        # A cold standby: same architecture, untrained weights.  The
        # master pushes the *checkpointed* expert over the wire.
        standby = ExpertWorker(build_model(team.expert_spec, rng))
        standby.start()
        master.redeploy(1, standby.address)
        preds, _, stats = master.infer(batch)
        print(f"      redeployed onto {standby.address}: "
              f"{stats.participants} participants, accuracy "
              f"{np.mean(preds == labels):.3f} "
              f"({master.redeploy_traffic.bytes_sent} model bytes pushed)")
        for index, health in sorted(master.worker_health.items()):
            mean = health.mean_reply_latency_s
            print(f"      worker {index}: {health.replies} replies, "
                  f"{health.failures} failures "
                  f"({health.timeouts} timeouts), "
                  f"{health.reconnects} reconnects, "
                  f"{health.redeployments} redeployments, "
                  f"mean reply {0.0 if mean is None else mean * 1e3:.1f} ms")
    finally:
        master.close()
        for worker in workers:
            worker.stop()
        if standby is not None:
            standby.stop()

    print("\n[5/6] killing the *master* mid-service: lease expiry, "
          "standby promotion, request re-drive ...")
    lease = LeaseConfig(duration_s=0.5)
    team_workers = []
    for expert in team.experts[1:]:
        worker = ExpertWorker(expert)
        worker.start()
        team_workers.append(worker)
    primary = TeamNetMaster(
        team.experts[0], [w.address for w in team_workers],
        epoch=1, leader_id="primary", degrade_on_failure=True,
        reply_timeout=2.0, store=store)
    # A *hot* standby this time: it mirrors the master expert and the
    # worker roster so it can take over the live team, not just one slot.
    hot_spare = StandbyMaster(
        "standby-0", expert=team.experts[0], store=store,
        roster={i: w.address for i, w in enumerate(team_workers, start=1)},
        lease=lease)
    hot_spare.start()
    primary.standbys = [hot_spare.address]
    front = promoted = None
    try:
        primary.attach()  # workers' leases now name "primary" at epoch 1
        front = FailoverServer(primary.serve(max_batch=8))
        flat = batch.reshape(len(batch), -1)  # serving takes 2-D batches
        preds, _, _ = front.infer(flat, timeout=10.0)
        print(f"      primary (epoch 1) serving: accuracy "
              f"{np.mean(preds == labels):.3f}")
        front.kill(closer=primary.close,
                   error=MasterFailover("example: primary killed"))
        parked = [front.submit(x) for x in np.array_split(flat, 4)]
        print(f"      !! primary killed; {front.stats().parked} requests "
              f"parked for re-drive")
        time.sleep(lease.duration_s * 1.5)  # let every lease age out
        view = hot_spare.poll()
        print(f"      standby observes leader_lost={view.leader_lost} "
              f"({len(view.reachable)} workers report stale leases)")
        promoted = hot_spare.promote(degrade_on_failure=True,
                                     reply_timeout=2.0)
        redriven = front.failover_to(promoted.serve(max_batch=8))
        answers = [future.result(timeout=10.0) for future in parked]
        preds = np.concatenate([a[0] for a in answers])
        stats = front.stats()
        print(f"      promoted standby (epoch {promoted.epoch}) re-drove "
              f"{redriven} requests: accuracy "
              f"{np.mean(preds == labels):.3f} "
              f"(completed {stats.completed}/{stats.submitted}, "
              f"duplicates suppressed {stats.duplicates_suppressed})")
    finally:
        if front is not None:
            front.close()
        if promoted is not None:
            promoted.close()
        hot_spare.stop()
        for worker in team_workers:
            worker.stop()

    print("\n[6/6] sustainable request rates on Raspberry Pi 3B+ "
          "(deployment scale):")
    ref = mlp_spec(8, width=2048)
    base = baseline_metrics(
        profile_model(build_model(ref, rng), (ref.in_features,)),
        RASPBERRY_PI_3B)
    rows = [("baseline MLP-8", base.latency_s)]
    for k in (2, 4):
        spec = downsize(ref, k)
        metrics = teamnet_metrics(
            profile_model(build_model(spec, rng), (spec.in_features,)),
            k, RASPBERRY_PI_3B, WIFI)
        rows.append((f"TeamNet {k}x {spec.name}", metrics.latency_s))
    for name, latency in rows:
        capacity = sustainable_rate(latency)
        at80 = capacity_sweep(latency, [0.8 * capacity], duration=20.0)[0]
        print(f"      {name:<22} capacity {capacity:7.1f} req/s   "
              f"p95 @ 80% load {at80['p95_sojourn_ms']:6.1f} ms")
    print("\nDone: fewer, smaller experts per node -> more headroom per "
          "device, the team survives node failures, failed nodes rejoin "
          "automatically when they come back, permanently lost experts "
          "redeploy from the checkpoint store onto standbys, and even "
          "the master itself fails over to a hot standby without "
          "dropping a request.")


if __name__ == "__main__":
    main()
