#!/usr/bin/env python3
"""Deploy a trained TeamNet across (simulated) edge nodes and run the
real master/worker socket protocol of Figure 1(d).

Each expert runs behind its own listening TCP socket (a worker thread
standing in for one edge device).  The master broadcasts the sensor
input, all experts infer in parallel, and the least-uncertain answer
wins.  We verify the distributed result matches local inference, measure
wall-clock latency over loopback, and print the analytic WiFi-model
latencies for the devices the paper used.

Run:  python examples/edge_cluster_inference.py
"""

import numpy as np

from repro.core import TeamInference, TeamNet, TrainerConfig
from repro.data import synthetic_mnist, train_test_split
from repro.distributed import deploy_local_team
from repro.edge import (JETSON_TX2_CPU, RASPBERRY_PI_3B, WIFI,
                        measure_latency, profile_model, teamnet_metrics)
from repro.nn import build_model, downsize, mlp_spec


def main() -> None:
    print("=== TeamNet distributed inference over TCP sockets ===\n")
    rng = np.random.default_rng(1)
    dataset = synthetic_mnist(1600, seed=1)
    train, test = train_test_split(dataset, 0.2, rng=rng)

    print("[1/4] training a 3-expert team ...")
    team = TeamNet.from_reference(
        mlp_spec(depth=8, width=64), num_experts=3,
        config=TrainerConfig(epochs=8, seed=1), seed=1)
    team.fit(train)
    print(f"      team accuracy: {team.accuracy(test):.3f}")

    print("\n[2/4] deploying: 1 master + 2 socket workers on localhost ...")
    master, workers = deploy_local_team(team.experts)
    try:
        for worker in workers:
            print(f"      worker listening on {worker.address}")

        x = test.images[:16]
        preds, winner, stats = master.infer(x)
        local = TeamInference(team.experts).predict(x)
        assert (preds == local).all(), "distributed != local inference"
        print(f"      distributed predictions match local inference "
              f"({stats.messages_sent} msgs out, "
              f"{stats.messages_received} msgs back, "
              f"{stats.bytes_sent} B sent)")
        share = np.bincount(winner, minlength=3) / len(winner)
        print(f"      winning-expert share over the batch: {share.round(2)}")

        print("\n[3/4] wall-clock latency on loopback (batch of 1):")
        sample = test.images[:1]
        summary = measure_latency(lambda: master.infer(sample), repeats=30)
        print(f"      mean {summary.mean_ms:.2f} ms   "
              f"p50 {summary.p50 * 1e3:.2f} ms   "
              f"p95 {summary.p95 * 1e3:.2f} ms")
    finally:
        master.close()
        for worker in workers:
            worker.stop()

    print("\n[4/4] analytic latency on the paper's hardware over WiFi "
          "(deployment-scale MLP-8/width-2048 experts):")
    reference = mlp_spec(depth=8, width=2048)
    for device in (RASPBERRY_PI_3B, JETSON_TX2_CPU):
        for num_experts in (2, 4):
            spec = downsize(reference, num_experts)
            cost = profile_model(build_model(spec, rng),
                                 (spec.in_features,))
            metrics = teamnet_metrics(cost, num_experts, device, WIFI)
            print(f"      {device.name:>16}  K={num_experts}  "
                  f"{spec.name}: {metrics.latency_ms:6.2f} ms  "
                  f"(cpu {metrics.cpu_fraction * 100:4.1f}%, "
                  f"mem {metrics.memory_fraction * 100:4.1f}%)")
    print("\nDone.")


if __name__ == "__main__":
    main()
