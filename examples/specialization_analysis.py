#!/usr/bin/env python3
"""Reproduce the Figure 9 analysis: what does each expert specialize in?

Trains a 2-expert TeamNet on synthetic CIFAR-10 and reports, per class,
which expert is the least-uncertain one — then aggregates over the
machine/animal superclasses.  In the paper, "Expert One is more certain
of machines such as airplanes, automobiles and trucks, while Expert Two
is more certain of animals such as cats and dogs."

Run:  python examples/specialization_analysis.py
"""

import numpy as np

from repro.core import TeamNet, TrainerConfig
from repro.data import synthetic_cifar, train_test_split
from repro.experiments.fig9 import (specialization_score,
                                    superclass_affinity)
from repro.nn import shake_shake_spec


def bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("=== Expert specialization on synthetic CIFAR-10 ===\n")
    rng = np.random.default_rng(2)
    dataset = synthetic_cifar(800, seed=2)
    train, test = train_test_split(dataset, 0.2, rng=rng)

    print("[1/2] training 2x SS-14 experts (this is the slow part) ...")
    team = TeamNet.from_reference(
        shake_shake_spec(depth=26, width=8), num_experts=2,
        config=TrainerConfig(epochs=4, batch_size=64, seed=2), seed=2)
    team.fit(train)
    print(f"      team accuracy: {team.accuracy(test):.3f}")

    print("\n[2/2] per-class certainty share "
          "(fraction of the class each expert 'owns'):\n")
    share = team.certainty_share(test)
    for class_index, name in enumerate(test.class_names):
        kind = ("machine" if class_index in test.superclasses["machines"]
                else "animal ")
        frac = share[0, class_index]
        print(f"   {name:>10} [{kind}]  expert1 {bar(frac)} "
              f"{frac * 100:5.1f}%")

    affinity = superclass_affinity(share, test.superclasses)
    print("\n   superclass affinity:")
    for group in ("machines", "animals"):
        values = ", ".join(f"expert{i + 1} {v * 100:5.1f}%"
                           for i, v in enumerate(affinity[group]))
        print(f"      {group:>9}: {values}")
    score = specialization_score(share)
    print(f"\n   specialization score: {score:.3f} "
          f"(0 = uniform, 1 = fully specialized)")
    if abs(affinity["machines"][0] - affinity["animals"][0]) > 0.2:
        print("   -> the experts split along the machine/animal boundary, "
          "as in Figure 9.")
    else:
        print("   -> the experts specialized, but not exactly along the "
              "machine/animal boundary (this varies with seed, as the "
              "partition is emergent, not supervised).")


if __name__ == "__main__":
    main()
