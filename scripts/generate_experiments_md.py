#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every paper experiment and record
measured results next to the paper's numbers.

Run:  python scripts/generate_experiments_md.py [output-path]
"""

import sys
import time
from pathlib import Path

from repro.experiments import (ALL_EXPERIMENTS, ExperimentScale, Workloads,
                               fig5, fig6, fig7, fig8, fig9, table1, table2)

SCALE = ExperimentScale(
    mnist_samples=2400, cifar_samples=800,
    mnist_epochs=12, cifar_epochs=5,
    mlp_width=64, cnn_width=8,
    gate_iterations=25, batch_size=64, seed=7,
)

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure from the evaluation section of *TeamNet: A
Collaborative Inference Framework on the Edge* (ICDCS 2019), regenerated
by this repository.  See DESIGN.md for the experiment index and the
environment substitutions (synthetic datasets, simulated devices); the
comparison below is therefore about **shapes** — orderings, ratios and
crossovers — not absolute numbers.

How each column is produced:

* **Accuracy** — measured on actually-trained models at training scale
  (MLP width {mlp_width} / Shake-Shake width {cnn_width}, {mnist_samples}
  MNIST / {cifar_samples} CIFAR samples).  The paper trains at full
  dataset scale, so its absolute accuracies are higher; what must match
  is the *relative* pattern (see each section's paper-vs-measured note).
* **Latency / memory / CPU / GPU** — analytic edge model at deployment
  scale (MLP-8 width 2048, SS-26 width 96) with message patterns verified
  against the real socket/MPI/RPC runtimes
  (tests/edge/test_consistency.py).

Regenerate with ``python scripts/generate_experiments_md.py`` or
``pytest benchmarks/ --benchmark-only -s``.
"""

PAPER_NOTES = {
    "fig5": """\
**Paper (Fig. 5):** on a Raspberry Pi 3B+, inference time, memory and CPU
all fall as experts are added, accuracy roughly flat.
**Measured:** the same three monotone trends hold (see table); accuracy
of the expert teams is within a few points of (here: above) the baseline.
""",
    "table1": """\
**Paper (Table I):** CPU — Baseline 3.4 ms, TeamNet 3.2/3.3 ms,
MPI-Matrix 108/189 ms, SG-MoE-G 5.9/4.1 ms, SG-MoE-M 6.9/10.3 ms;
GPU — Baseline 0.3 ms beats TeamNet 1.5/2.6 ms ("the performance gain
from a smaller model is overwhelmed by the communication cost").
**Measured:** same ordering on CPU (TeamNet < Baseline << SG-MoE-M <<
MPI-Matrix, with MPI-Matrix growing with node count), and the same GPU
inversion (baseline fastest).  One paper-internal inconsistency we do not
reproduce: its Table I(b) shows SG-MoE-M *faster* than SG-MoE-G on GPU
while Table I(a)/II show the opposite; our model consistently prices
SG-MoE-M above SG-MoE-G.
""",
    "fig6": """\
**Paper (Fig. 6):** per-expert assignment proportions converge to the set
point (0.5 for K=2 at ~12000 iterations; 0.25 for K=4 at ~15000, at full
dataset scale).
**Measured:** the proportions converge to 1/K at our (smaller) scale; see
the charts and the trailing deviations in the notes.
""",
    "fig7": """\
**Paper (Fig. 7):** CIFAR on Jetson CPUs — TeamNet "nearly halves"
SS-26's 378 ms (179.5 ms at K=2, 84.8 ms at K=4); on Jetson GPUs the
fastest point is K=2 (11.4 ms vs 14.3 baseline and 13.1 at K=4).
**Measured:** both shapes hold, including the K=2 GPU sweet spot.
""",
    "table2": """\
**Paper (Table II):** CPU — Baseline 378.2 ms, TeamNet 179.5/84.8 ms,
MPI-Kernel 2684/6722 ms, MPI-Branch 1227.8 ms, SG-MoE-G 157.3/67.8 ms;
SG-MoE accuracy 4-6 points below TeamNet.
**Measured:** same latency ordering (TeamNet < Baseline << MPI-Branch <
MPI-Kernel, MPI-Kernel degrading with more nodes; SG-MoE-G competitive
with TeamNet on latency).  **Known deviation:** at our reduced CIFAR
scale (800 synthetic images, ~5 epochs, width-8 Shake-Shake) the CNN
experts are under-trained, their predictive entropies are poorly
calibrated, and the arg-min gate picks the wrong expert often enough
that SG-MoE's *dense mixture* scores higher accuracy than TeamNet —
the opposite of the paper's full-scale result.  On MNIST, where training
converges at our scale, the paper's accuracy ordering (TeamNet >= MoE,
~= baseline) does reproduce (Table I); the CIFAR specialization structure
itself also reproduces (fig9).  Entropy-calibration sensitivity is a real
limitation of arg-min gating worth knowing about.
""",
    "fig8": """\
**Paper (Fig. 8):** CIFAR proportions start near the set point "by luck",
wander while the experts are ignorant, and converge (~32000 iterations
for K=4 at paper scale).
**Measured:** convergence to 1/K at our scale; K=4 is visibly slower
than K=2, as in the paper.
""",
    "fig9": """\
**Paper (Fig. 9):** with K=2, Expert One owns the machine classes
(airplane, automobile, ship, truck) and Expert Two the animals; with K=4
the machine/animal boundary persists with two experts per superclass.
**Measured:** the K=2 run splits cleanly along the machine/animal
boundary of the synthetic dataset (see the superclass affinity table and
heatmap); K=4 shows the same boundary with class-level specialization
inside each superclass.
""",
}


ABLATION_FOOTER = """
## Ablations and extension benches

Beyond the paper's artifacts, ``pytest benchmarks/ --benchmark-only -s``
also regenerates (full printed tables in ``bench_output.txt``):

| bench | question | headline result |
|---|---|---|
| `ablation_gain` | how fast does each controller gain `a` undo a biased start? | any `0 < a < 1` shrinks the bias (Appendix A); larger `a` corrects faster early |
| `ablation_softmin` | meta-estimated soft-argmin temperature vs fixed `b`? | the meta-estimator matches the best fixed temperature without tuning |
| `ablation_vote` | arg-min gate vs (weighted) majority vote at inference? | arg-min >= voting on specialized experts, as Section V argues |
| `ablation_gate` | what happens without the dynamic gate? | plain arg-min training collapses (one expert takes ~100% of the data); the dynamic gate caps the worst share near the controller target |
| `ablation_partitioning` | TeamNet vs SG-MoE vs Jacobs-1991 adaptive MoE? | all learn; TeamNet is competitive while needing no gate network at inference |
| `ablation_weighted` | non-uniform partition targets (future work)? | the gate tracks a 70/30 target at gain `a<=0.3` (gain sensitivity documented in DESIGN.md) |
| `throughput` | sustained Poisson load on an RPi fleet? | TeamNet-4's capacity is >2x the deep baseline's (lower per-inference latency = more requests/s) |
| `cascade` | TeamNet vs an early-exit (DDNN-style) cascade? | both philosophies work; the cascade trades average latency against escalation traffic, TeamNet against always-on peers |
"""


def main() -> None:
    out_path = Path(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md")
    Workloads.shared(SCALE)  # one cache for every driver
    sections = [HEADER.format(mlp_width=SCALE.mlp_width,
                              cnn_width=SCALE.cnn_width,
                              mnist_samples=SCALE.mnist_samples,
                              cifar_samples=SCALE.cifar_samples)]
    for name, driver in ALL_EXPERIMENTS.items():
        start = time.time()
        print(f"[{name}] running ...", flush=True)
        result = driver(SCALE)
        elapsed = time.time() - start
        sections.append(f"\n## {name}\n")
        sections.append(PAPER_NOTES.get(name, ""))
        sections.append("\n```\n" + result.render() + "\n```\n")
        sections.append(f"_(regenerated in {elapsed:.0f}s)_\n")
        print(f"[{name}] done in {elapsed:.0f}s", flush=True)
    sections.append(ABLATION_FOOTER)
    out_path.write_text("\n".join(sections))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
