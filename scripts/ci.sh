#!/usr/bin/env bash
# Tier-1 CI gate: the full test suite with a per-test timeout so a
# regressed gather (or any other hang) fails fast instead of wedging CI.
#
# Usage:
#   scripts/ci.sh [extra pytest args...]     # tier-1 suite
#   scripts/ci.sh --testkit                  # simulation/property suite:
#       runs tests/testkit for each seed in TESTKIT_SEEDS (default "0 1 2"),
#       exporting TESTKIT_SEED per run; failing differential cases leave
#       repro artifacts in TESTKIT_REPRO_DIR (default .testkit-repro/).
#   scripts/ci.sh --chaos                    # chaos soak: long seeded
#       flap/partition/crash-restart storms on the simulated fabric, one
#       soak per seed in CHAOS_SEEDS (default "0 1 2 3"), CHAOS_ROUNDS
#       rounds each (default 60); a failing round writes its fault
#       schedule to CHAOS_REPRO_DIR (default .chaos-repro/).
#   scripts/ci.sh --serve                    # serving throughput gate:
#       the open-loop micro-batched serving bench against a real 4-expert
#       localhost team at smoke scale (SERVE_BENCH_DURATION, default 1.0s
#       per offered rate); asserts >= 5x the synchronous request rate at
#       bounded p95 and writes the rps/latency trajectory to
#       BENCH_throughput.json (path override: SERVE_BENCH_JSON).
#   scripts/ci.sh --fastpath                 # compiled fast-path gate:
#       the executor/int8 differential suites for each seed in
#       TESTKIT_SEEDS (default "0 1 2"; failing cases leave repro JSONs
#       in TESTKIT_REPRO_DIR), then the single-expert throughput bench,
#       asserting >= 3x compiled and int8 speedup over the tape and
#       writing the trajectory + per-op tables to BENCH_fastpath.json
#       (path override: FASTPATH_BENCH_JSON).
#   scripts/ci.sh --crash                    # durability soak: seeded
#       kill-during-checkpoint / torn-file / bit-exact-resume rounds, one
#       soak per seed in CRASH_SEEDS (default "0 1 2 3"), CRASH_ROUNDS
#       rounds each (default 25); a failing round writes a JSON repro
#       (seed + round + crash point) to CRASH_REPRO_DIR
#       (default .crash-repro/).
#   scripts/ci.sh --failover                 # master-failover gate: the
#       promotion chaos soak (kill the primary at seeded protocol points
#       mid-traffic; every accepted request must resolve byte-identically
#       to a no-failure run), one soak per seed in FAILOVER_SEEDS
#       (default "0 1 2"), FAILOVER_ROUNDS rounds each (default 10); a
#       failing round writes a JSON repro to FAILOVER_REPRO_DIR (default
#       .testkit-repro/).  Then the recovery-time bench: kill -> detect
#       -> elect -> promote -> re-drive must fit the lease's
#       recovery_budget_s for every lease/latency pairing, writing the
#       sweep to BENCH_failover.json (path override: FAILOVER_BENCH_JSON).
#   scripts/ci.sh --integrity                # data-plane integrity gate:
#       the silent-corruption soak (sharpened experts, live weight
#       bit-flips, stale-version reconnects, tampered wire payloads; the
#       protected master must quarantine, auto-redeploy, and converge
#       back to byte-identical answers), one soak per seed in
#       INTEGRITY_SEEDS (default "0 1 2"), INTEGRITY_ROUNDS rounds each
#       (default 8); a failing round writes a JSON repro to
#       INTEGRITY_REPRO_DIR (default .testkit-repro/).  Then the
#       detection-latency bench: quarantine within DETECT_PROBE_BUDGET
#       canary probes and recovery within RECOVERY_PROBE_BUDGET for
#       every corruption mode, with the unprotected baseline shown
#       diverging on the same schedules; writes BENCH_integrity.json
#       (path override: INTEGRITY_BENCH_JSON).
#   scripts/ci.sh --overload                 # overload-control gate: the
#       seeded virtual-time overload soak (warm 1x / burst 10x / recover
#       1x Poisson arrivals; the protected serving model must keep >= 70%
#       of warm goodput through the burst and recovery, answer within the
#       deadline at p99, and never start service on an expired request,
#       while the unbounded-FIFO baseline queue-collapses on identical
#       arrivals) plus the deadline/shedding unit suites, one run per
#       seed in OVERLOAD_SEEDS (default "0 1 2"), OVERLOAD_ROUNDS soak
#       rounds each (default 3); a failing round writes a JSON repro to
#       OVERLOAD_REPRO_DIR (default .testkit-repro/).  Then the goodput
#       bench, writing both runs' per-phase trajectories to
#       BENCH_overload.json (path override: OVERLOAD_BENCH_JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

PER_TEST_TIMEOUT="${PER_TEST_TIMEOUT:-120}"
SUITE_TIMEOUT="${SUITE_TIMEOUT:-1800}"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [[ "${1:-}" == "--testkit" ]]; then
    shift
    export TESTKIT_REPRO_DIR="${TESTKIT_REPRO_DIR:-.testkit-repro}"
    for seed in ${TESTKIT_SEEDS:-0 1 2}; do
        echo "=== testkit sweep: TESTKIT_SEED=$seed ==="
        TESTKIT_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
    shift
    export CHAOS_REPRO_DIR="${CHAOS_REPRO_DIR:-.chaos-repro}"
    export CHAOS_ROUNDS="${CHAOS_ROUNDS:-60}"
    for seed in ${CHAOS_SEEDS:-0 1 2 3}; do
        echo "=== chaos soak: CHAOS_SEED=$seed (CHAOS_ROUNDS=$CHAOS_ROUNDS) ==="
        CHAOS_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit/test_chaos.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    exit 0
fi

if [[ "${1:-}" == "--serve" ]]; then
    shift
    export SERVE_BENCH_DURATION="${SERVE_BENCH_DURATION:-1.0}"
    export SERVE_BENCH_JSON="${SERVE_BENCH_JSON:-BENCH_throughput.json}"
    echo "=== serving bench: ${SERVE_BENCH_DURATION}s per offered rate ==="
    # --per-test-timeout lives in tests/conftest.py and is not loaded for
    # the benchmarks tree; the outer timeout is the hang backstop here.
    timeout --signal=INT "$SUITE_TIMEOUT" \
        python -m pytest -x -q -s benchmarks/test_bench_serving.py \
        -p no:cacheprovider "$@"
    exit 0
fi

if [[ "${1:-}" == "--fastpath" ]]; then
    shift
    export TESTKIT_REPRO_DIR="${TESTKIT_REPRO_DIR:-.testkit-repro}"
    for seed in ${TESTKIT_SEEDS:-0 1 2}; do
        echo "=== fast-path differential: TESTKIT_SEED=$seed ==="
        TESTKIT_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q \
            tests/nn/test_executor_differential.py \
            tests/testkit/test_serving_differential.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    export FASTPATH_BENCH_JSON="${FASTPATH_BENCH_JSON:-BENCH_fastpath.json}"
    echo "=== fast-path bench: >= 3x compiled/int8 over tape ==="
    timeout --signal=INT "$SUITE_TIMEOUT" \
        python -m pytest -x -q -s benchmarks/test_bench_fastpath.py \
        -p no:cacheprovider "$@"
    exit 0
fi

if [[ "${1:-}" == "--crash" ]]; then
    shift
    export CRASH_REPRO_DIR="${CRASH_REPRO_DIR:-.crash-repro}"
    export CRASH_ROUNDS="${CRASH_ROUNDS:-25}"
    for seed in ${CRASH_SEEDS:-0 1 2 3}; do
        echo "=== crash soak: CRASH_SEED=$seed (CRASH_ROUNDS=$CRASH_ROUNDS) ==="
        CRASH_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit/test_crash.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    exit 0
fi

if [[ "${1:-}" == "--failover" ]]; then
    shift
    export FAILOVER_REPRO_DIR="${FAILOVER_REPRO_DIR:-.testkit-repro}"
    export FAILOVER_ROUNDS="${FAILOVER_ROUNDS:-10}"
    for seed in ${FAILOVER_SEEDS:-0 1 2}; do
        echo "=== failover soak: FAILOVER_SEED=$seed (FAILOVER_ROUNDS=$FAILOVER_ROUNDS) ==="
        FAILOVER_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit/test_failover.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    export FAILOVER_BENCH_JSON="${FAILOVER_BENCH_JSON:-BENCH_failover.json}"
    echo "=== failover bench: recovery within the lease budget ==="
    timeout --signal=INT "$SUITE_TIMEOUT" \
        python -m pytest -x -q -s benchmarks/test_bench_failover.py \
        -p no:cacheprovider "$@"
    exit 0
fi

if [[ "${1:-}" == "--integrity" ]]; then
    shift
    export INTEGRITY_REPRO_DIR="${INTEGRITY_REPRO_DIR:-.testkit-repro}"
    export INTEGRITY_ROUNDS="${INTEGRITY_ROUNDS:-8}"
    for seed in ${INTEGRITY_SEEDS:-0 1 2}; do
        echo "=== integrity soak: INTEGRITY_SEED=$seed (INTEGRITY_ROUNDS=$INTEGRITY_ROUNDS) ==="
        INTEGRITY_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit/test_integrity.py \
            tests/distributed/test_integrity.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    export INTEGRITY_BENCH_JSON="${INTEGRITY_BENCH_JSON:-BENCH_integrity.json}"
    echo "=== integrity bench: detection within the probe budget ==="
    timeout --signal=INT "$SUITE_TIMEOUT" \
        python -m pytest -x -q -s benchmarks/test_bench_integrity.py \
        -p no:cacheprovider "$@"
    exit 0
fi

if [[ "${1:-}" == "--overload" ]]; then
    shift
    export OVERLOAD_REPRO_DIR="${OVERLOAD_REPRO_DIR:-.testkit-repro}"
    export OVERLOAD_ROUNDS="${OVERLOAD_ROUNDS:-3}"
    for seed in ${OVERLOAD_SEEDS:-0 1 2}; do
        echo "=== overload soak: OVERLOAD_SEED=$seed (OVERLOAD_ROUNDS=$OVERLOAD_ROUNDS) ==="
        OVERLOAD_SEED="$seed" \
            timeout --signal=INT "$SUITE_TIMEOUT" \
            python -m pytest -x -q tests/testkit/test_overload.py \
            tests/distributed/test_overload.py \
            --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
    done
    export OVERLOAD_BENCH_JSON="${OVERLOAD_BENCH_JSON:-BENCH_overload.json}"
    echo "=== overload bench: goodput floor under a 10x burst ==="
    timeout --signal=INT "$SUITE_TIMEOUT" \
        python -m pytest -x -q -s benchmarks/test_bench_overload.py \
        -p no:cacheprovider "$@"
    exit 0
fi

# The outer `timeout` is the backstop in case a hang happens outside a
# test body (collection, fixtures); the pytest option catches the rest.
exec timeout --signal=INT "$SUITE_TIMEOUT" \
    python -m pytest -x -q --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
