#!/usr/bin/env bash
# Tier-1 CI gate: the full test suite with a per-test timeout so a
# regressed gather (or any other hang) fails fast instead of wedging CI.
#
# Usage: scripts/ci.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

PER_TEST_TIMEOUT="${PER_TEST_TIMEOUT:-120}"
SUITE_TIMEOUT="${SUITE_TIMEOUT:-1800}"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The outer `timeout` is the backstop in case a hang happens outside a
# test body (collection, fixtures); the pytest option catches the rest.
exec timeout --signal=INT "$SUITE_TIMEOUT" \
    python -m pytest -x -q --per-test-timeout="$PER_TEST_TIMEOUT" "$@"
